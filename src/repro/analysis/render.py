"""ASCII rendering for experiment reports (no plotting dependencies)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def fmt_percent(fraction: float, digits: int = 1) -> str:
    """0.59 -> '59.0%'."""
    return f"{fraction * 100:.{digits}f}%"


class Table:
    """A fixed-width ASCII table builder."""

    def __init__(self, headers: "Sequence[str]", title: "Optional[str]" = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: "List[List[str]]" = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: "Sequence[str]") -> str:
            return "| " + " | ".join(
                c.ljust(widths[i]) for i, c in enumerate(cells)
            ) + " |"

        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        out: "List[str]" = []
        if self.title:
            out.append(self.title)
        out.append(sep)
        out.append(line(self.headers))
        out.append(sep)
        for row in self.rows:
            out.append(line(row))
        out.append(sep)
        return "\n".join(out)


def bar_chart(
    labels: "Sequence[str]",
    values: "Sequence[float]",
    width: int = 40,
    unit: str = "",
    title: "Optional[str]" = None,
) -> str:
    """Horizontal ASCII bar chart (the poor engineer's matplotlib)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    out: "List[str]" = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out + ["(no data)"])
    peak = max(values) or 1.0
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        out.append(
            f"{label.rjust(label_width)} | {bar} {value:.3g}{unit}"
        )
    return "\n".join(out)


def render_critical_path(dag: Any, width: int = 32) -> str:
    """Render one stitched repair DAG's observed critical path.

    ``dag`` is a :class:`repro.obs.causal.RepairDag` (typed as ``Any`` to
    keep this module free of obs imports).  Output: a step table (what ran
    where, for how long, ending when), a per-phase attribution bar chart,
    and the structural summary conformance gates on — serialized transfer
    depth and peak ingress fan-in.
    """
    path = dag.critical_path()
    head = dag.repair_id or dag.trace_id
    strat = dag.strategy or "?"
    k = dag.k if dag.k is not None else "?"
    out: "List[str]" = [
        f"critical path of {head}  [{strat} k={k}, clock={dag.clock}]"
    ]
    if not path:
        out.append("(empty DAG)")
        return "\n".join(out) + "\n"
    origin = min(n.start for n in dag.nodes.values())
    table = Table(("step", "phase", "node", "duration", "ends at"))
    for i, n in enumerate(path, 1):
        table.add_row(
            i,
            n.phase,
            n.node,
            f"{n.duration * 1e3:.3f}ms",
            f"{(n.end - origin) * 1e3:.3f}ms",
        )
    out.append(table.render())
    attribution = dag.attribution(path)
    if attribution:
        labels = list(attribution)
        out.append(
            bar_chart(
                labels,
                [attribution[name] * 1e3 for name in labels],
                width=width,
                unit="ms",
                title="critical-path attribution:",
            )
        )
    ingress_node, fanin = dag.ingress_fanin()
    out.append(
        f"serialized transfer depth: {dag.transfer_depth()}  "
        f"(Theorem 1 observable); busiest ingress: "
        f"{ingress_node or '-'} with {fanin} transfer(s)"
    )
    out.append(
        f"path covers {len(path)} of {len(dag.nodes)} work units, "
        f"repair elapsed {dag.elapsed() * 1e3:.3f}ms"
    )
    return "\n".join(out) + "\n"


#: Eight vertical-resolution levels for one-character-per-sample plots.
SPARK_TICKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: "Sequence[float]",
    width: int = 40,
    lo: "Optional[float]" = None,
    hi: "Optional[float]" = None,
) -> str:
    """One-line unicode plot of a sample sequence.

    The last ``width`` values are shown, scaled between ``lo`` and ``hi``
    (observed min/max when not given).  A flat series renders at
    mid-height rather than vanishing.
    """
    values = list(values)[-width:]
    if not values:
        return ""
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    span = high - low
    if span <= 0:
        return SPARK_TICKS[4] * len(values)
    top = len(SPARK_TICKS) - 1
    out = []
    for value in values:
        level = int((value - low) / span * top)
        out.append(SPARK_TICKS[max(0, min(top, level))])
    return "".join(out)


def time_series_chart(
    samples: "Sequence[tuple]",
    width: int = 60,
    height: int = 8,
    title: "Optional[str]" = None,
) -> str:
    """Multi-row ASCII plot of ``(t, value)`` samples.

    Samples are bucketed into ``width`` columns over their time extent
    (bucket mean when several land in a column) and drawn as a
    ``height``-row scatter with a y-axis of min/mid/max labels.
    """
    samples = [(float(t), float(v)) for t, v in samples]
    out: "List[str]" = []
    if title:
        out.append(title)
    if not samples:
        return "\n".join(out + ["(no samples)"])
    t0 = min(t for t, _ in samples)
    t1 = max(t for t, _ in samples)
    extent = max(t1 - t0, 1e-12)
    columns: "List[List[float]]" = [[] for _ in range(width)]
    for t, v in samples:
        col = min(width - 1, int((t - t0) / extent * width))
        columns[col].append(v)
    col_values = [
        sum(vals) / len(vals) if vals else None for vals in columns
    ]
    present = [v for v in col_values if v is not None]
    low, high = min(present), max(present)
    span = max(high - low, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(col_values):
        if value is None:
            continue
        row = int((value - low) / span * (height - 1))
        grid[height - 1 - row][col] = "*"
    labels = [f"{high:.4g}", f"{(low + high) / 2:.4g}", f"{low:.4g}"]
    label_width = max(len(s) for s in labels)
    for i, row in enumerate(grid):
        if i == 0:
            label = labels[0]
        elif i == height // 2:
            label = labels[1]
        elif i == height - 1:
            label = labels[2]
        else:
            label = ""
        out.append(f"{label.rjust(label_width)} |{''.join(row)}")
    out.append(
        " " * label_width
        + " +"
        + "-" * width
        + f"  {extent:.3g}s window"
    )
    return "\n".join(out)
