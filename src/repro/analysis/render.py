"""ASCII rendering for experiment reports (no plotting dependencies)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def fmt_percent(fraction: float, digits: int = 1) -> str:
    """0.59 -> '59.0%'."""
    return f"{fraction * 100:.{digits}f}%"


class Table:
    """A fixed-width ASCII table builder."""

    def __init__(self, headers: "Sequence[str]", title: "Optional[str]" = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: "List[List[str]]" = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: "Sequence[str]") -> str:
            return "| " + " | ".join(
                c.ljust(widths[i]) for i, c in enumerate(cells)
            ) + " |"

        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        out: "List[str]" = []
        if self.title:
            out.append(self.title)
        out.append(sep)
        out.append(line(self.headers))
        out.append(sep)
        for row in self.rows:
            out.append(line(row))
        out.append(sep)
        return "\n".join(out)


def bar_chart(
    labels: "Sequence[str]",
    values: "Sequence[float]",
    width: int = 40,
    unit: str = "",
    title: "Optional[str]" = None,
) -> str:
    """Horizontal ASCII bar chart (the poor engineer's matplotlib)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    out: "List[str]" = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out + ["(no data)"])
    peak = max(values) or 1.0
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        out.append(
            f"{label.rjust(label_width)} | {bar} {value:.3g}{unit}"
        )
    return "\n".join(out)
