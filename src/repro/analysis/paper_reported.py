"""Numbers the paper reports, used for side-by-side comparison.

All values transcribed from the EuroSys'16 text; figure-derived entries
are approximate (the paper gives exact numbers only in prose for most).
"""

from __future__ import annotations

#: Table 1 — potential reduction in network transfer / per-server BW.
TABLE1 = {
    (6, 3): {"network": 0.50, "per_server_bw": 0.50},
    (8, 3): {"network": 0.50, "per_server_bw": 0.625},
    (10, 4): {"network": 0.60, "per_server_bw": 0.60},
    (12, 4): {"network": 0.666, "per_server_bw": 0.666},
}

#: Fig 1 — network transfer is "up to 94%" of degraded read time; disk
#: read "up to 17.8%"; computation "relatively insignificant".
FIG1_NETWORK_SHARE_MAX = 0.94
FIG1_DISK_SHARE_MAX = 0.178

#: Fig 7a — repair-time reduction "up to 59%" (RS(12,4), large chunks);
#: §1 prose: "up to a 59% reduction ... of which 57% from network".
FIG7A_MAX_REDUCTION = 0.59

#: Fig 7b — RS(12,4): 53% reduction at 8 MB, 57% at 96 MB.
FIG7B = {"8MiB": 0.53, "96MiB": 0.57}

#: Fig 7d — degraded-read throughput (MB/s) and PPR gains.
FIG7D = {
    ("RS(6,3)", "200Mbps"): {"traditional": 1.2, "ppr": 8.5, "gain": 7.0},
    ("RS(12,4)", "200Mbps"): {"traditional": 0.8, "ppr": 6.6, "gain": 8.25},
    ("RS(6,3)", "1Gbps"): {"gain": 1.8},
    ("RS(12,4)", "1Gbps"): {"gain": 2.5},
}

#: Fig 7e — caching adds only ~2% extra saving at k=12, 64 MB chunks.
FIG7E_K12_64MB_EXTRA = 0.02

#: Fig 8 — m-PPR total-repair-time reduction range for 1..N simultaneous
#: chunk-server failures on BIGSITE.
FIG8_REDUCTION_RANGE = (0.31, 0.47)

#: §7.6 — RM plan creation + distribution times and throughput.
SEC76 = {
    "RS(6,3)": {"plan_ms": 5.3, "repairs_per_sec": 189},
    "RS(12,4)": {"plan_ms": 8.7, "repairs_per_sec": 115},
}

#: Fig 9 — additional reduction from overlaying PPR (64 MB chunks).
FIG9_LRC_PPR_EXTRA = 0.19
FIG9_ROTRS_PPR_EXTRA = 0.35

#: Theorem 1 — transfer timesteps: ceil(log2(k+1)) vs k.
