"""One driver per table/figure of the paper's evaluation.

Every function returns an :class:`ExperimentResult` whose ``rows`` hold the
raw measurements and whose ``report`` is a printable paper-vs-measured
summary.  Defaults are sized to run in seconds; benchmarks may pass more
repetitions.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import paper_reported as paper
from repro.analysis.render import Table, bar_chart, fmt_percent
from repro.codes import (
    LocalReconstructionCode,
    ReedSolomonCode,
    RotatedReedSolomonCode,
)
from repro.codes.base import ErasureCode
from repro.core.mppr import MPPRConfig, RepairManager
from repro.core.single_repair import run_degraded_read, run_single_repair
from repro.fs.cluster import StorageCluster
from repro.repair import theory
from repro.repair.plan import build_plan
from repro.util.units import MIB, parse_size
from repro.workloads.failures import crash_random_servers


@dataclass
class ExperimentResult:
    """Structured output of one experiment driver."""

    experiment_id: str
    title: str
    rows: "List[Dict[str, object]]"
    report: str
    notes: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.report

    def to_csv(self, path: "str | object") -> None:
        """Write the raw rows as CSV (columns = union of row keys)."""
        import csv
        import io
        import pathlib

        columns: "List[str]" = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        pathlib.Path(path).write_text(buffer.getvalue(), encoding="utf-8")


#: The four deployment codes of Table 1 / §7.1.
EVAL_CODES: "List[Tuple[int, int]]" = [(6, 3), (8, 3), (10, 4), (12, 4)]


def _mean_repair(
    code_factory: "Callable[[], ErasureCode]",
    strategy: str,
    chunk_size: str,
    runs: int,
    degraded: bool = False,
    seeds: "Optional[Sequence[int]]" = None,
    **cluster_kw,
) -> "Tuple[float, List[object]]":
    """Mean duration over fresh clusters (one repair each, like the paper)."""
    durations: "List[float]" = []
    results = []
    seeds = seeds or range(runs)
    for seed in list(seeds)[:runs]:
        cluster = StorageCluster.smallsite(seed=2016 + seed, **cluster_kw)
        stripe = cluster.write_stripe(code_factory(), chunk_size)
        runner = run_degraded_read if degraded else run_single_repair
        result = runner(cluster, stripe, lost_index=0, strategy=strategy)
        assert result.verified, "reconstruction produced wrong bytes"
        durations.append(result.duration)
        results.append(result)
    return statistics.mean(durations), results


# ----------------------------------------------------------------------
# Table 1 — potential improvements (closed form)
# ----------------------------------------------------------------------
def table1() -> ExperimentResult:
    table = Table(
        ["code", "users", "net-transfer reduction (paper)",
         "net-transfer reduction (ours)", "max BW/server (paper)",
         "max BW/server (ours)"],
        title="Table 1: potential improvements from PPR",
    )
    rows = []
    for row in theory.table1():
        reported = paper.TABLE1[(row.k, row.m)]
        rows.append(
            {
                "k": row.k,
                "m": row.m,
                "network_ours": row.network_transfer_reduction,
                "network_paper": reported["network"],
                "bw_ours": row.per_server_bw_reduction,
                "bw_paper": reported["per_server_bw"],
            }
        )
        table.add_row(
            f"({row.k},{row.m})",
            row.users,
            fmt_percent(reported["network"]),
            fmt_percent(row.network_transfer_reduction),
            fmt_percent(reported["per_server_bw"]),
            fmt_percent(row.per_server_bw_reduction),
        )
    return ExperimentResult(
        "table1", "Potential improvements", rows, table.render()
    )


# ----------------------------------------------------------------------
# Fig 1 — phase breakdown of a degraded read
# ----------------------------------------------------------------------
def fig1_phase_breakdown(
    codes: "Sequence[Tuple[int, int]]" = tuple(EVAL_CODES),
    chunk_size: str = "64MiB",
) -> ExperimentResult:
    table = Table(
        ["code", "network", "disk read", "compute", "plan"],
        title=(
            "Fig 1: share of degraded-read time per phase "
            "(traditional RS reconstruction)"
        ),
    )
    rows = []
    for k, m in codes:
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(ReedSolomonCode(k, m), chunk_size)
        result = run_degraded_read(cluster, stripe, 0, strategy="star")
        shares = {
            phase: result.phase_share(phase)
            for phase in ("network", "disk_read", "compute", "plan")
        }
        rows.append({"k": k, "m": m, **shares})
        table.add_row(
            f"RS({k},{m})",
            fmt_percent(shares["network"]),
            fmt_percent(shares["disk_read"]),
            fmt_percent(shares["compute"]),
            fmt_percent(shares["plan"]),
        )
    notes = (
        f"paper: network up to {fmt_percent(paper.FIG1_NETWORK_SHARE_MAX)}, "
        f"disk read up to {fmt_percent(paper.FIG1_DISK_SHARE_MAX)}, "
        "computation relatively insignificant"
    )
    return ExperimentResult(
        "fig1", "Degraded-read phase breakdown", rows,
        table.render() + "\n" + notes, notes,
    )


# ----------------------------------------------------------------------
# Fig 2 / Fig 4 — per-server transfer pattern
# ----------------------------------------------------------------------
def fig4_link_traffic(
    k: int = 6, m: int = 3, chunk_size: str = "64MiB"
) -> ExperimentResult:
    rows = []
    sections = []
    for strategy in ("star", "ppr"):
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(ReedSolomonCode(k, m), chunk_size)
        result = run_single_repair(cluster, stripe, 0, strategy=strategy)
        per_server = {}
        for (src, dst), nbytes in result.traffic.pairs().items():
            per_server.setdefault(src, [0.0, 0.0])[1] += nbytes
            per_server.setdefault(dst, [0.0, 0.0])[0] += nbytes
        chunk = parse_size(chunk_size)
        labels, values = [], []
        for server in sorted(per_server):
            ingress, egress = per_server[server]
            labels.append(server)
            values.append((ingress + egress) / chunk)
            rows.append(
                {
                    "strategy": strategy,
                    "server": server,
                    "ingress_chunks": ingress / chunk,
                    "egress_chunks": egress / chunk,
                }
            )
        sections.append(
            bar_chart(
                labels, values, unit=" chunks",
                title=f"[{strategy}] per-server ingress+egress, RS({k},{m})",
            )
        )
    report = "\n\n".join(sections) + (
        f"\npaper Fig 2/4: traditional funnels {k} chunks into the repair "
        f"site; PPR caps any server at ~ceil(log2({k}+1)) chunks"
    )
    return ExperimentResult("fig4", "Transfer patterns", rows, report)


# ----------------------------------------------------------------------
# Theorem 1 — measured network transfer time vs closed form
# ----------------------------------------------------------------------
def theorem1_network_times(
    ks: "Sequence[Tuple[int, int]]" = tuple(EVAL_CODES),
    chunk_size: str = "64MiB",
) -> ExperimentResult:
    table = Table(
        ["code", "traditional k*C/B", "measured star", "PPR log2*C/B",
         "measured PPR"],
        title="Theorem 1: network transfer time, formula vs simulator",
    )
    chunk = parse_size(chunk_size)
    bw = 125e6  # 1 Gbps
    rows = []
    for k, m in ks:
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(ReedSolomonCode(k, m), chunk_size)
        star = run_single_repair(cluster, stripe, 0, strategy="star")
        cluster2 = StorageCluster.smallsite()
        stripe2 = cluster2.write_stripe(ReedSolomonCode(k, m), chunk_size)
        ppr = run_single_repair(cluster2, stripe2, 0, strategy="ppr")
        pred_star = theory.traditional_transfer_time(k, chunk, bw)
        pred_ppr = theory.ppr_transfer_time(k, chunk, bw)
        rows.append(
            {
                "k": k,
                "pred_star": pred_star,
                "meas_star": star.phase_busy["network"],
                "pred_ppr": pred_ppr,
                "meas_ppr": ppr.phase_busy["network"],
            }
        )
        table.add_row(
            f"RS({k},{m})",
            f"{pred_star:.2f}s",
            f"{star.phase_busy['network']:.2f}s",
            f"{pred_ppr:.2f}s",
            f"{ppr.phase_busy['network']:.2f}s",
        )
    return ExperimentResult(
        "theorem1", "Network transfer times", rows, table.render()
    )


# ----------------------------------------------------------------------
# Table 2 — critical-path computation
# ----------------------------------------------------------------------
def table2_critical_path(
    ks: "Sequence[Tuple[int, int]]" = tuple(EVAL_CODES),
    chunk_size: str = "64MiB",
) -> ExperimentResult:
    from repro.sim.compute import ComputeModel

    model = ComputeModel()
    chunk = parse_size(chunk_size)
    table = Table(
        ["code", "traditional ops (mul/xor)", "PPR ops (mul/xor)",
         "traditional time", "PPR critical path", "speedup"],
        title="Table 2: computation on the reconstruction critical path",
    )
    rows = []
    for k, m in ks:
        trad_ops = theory.critical_path_traditional(k)
        ppr_ops = theory.critical_path_ppr(k)
        trad_t = model.traditional_decode_time(k, chunk)
        ppr_t = model.ppr_critical_path_time(k, chunk)
        rows.append(
            {
                "k": k,
                "trad_mul": trad_ops.gf_multiplications,
                "trad_xor": trad_ops.xor_operations,
                "ppr_mul": ppr_ops.gf_multiplications,
                "ppr_xor": ppr_ops.xor_operations,
                "trad_time": trad_t,
                "ppr_time": ppr_t,
            }
        )
        table.add_row(
            f"RS({k},{m})",
            f"{trad_ops.gf_multiplications}/{trad_ops.xor_operations}",
            f"{ppr_ops.gf_multiplications}/{ppr_ops.xor_operations}",
            f"{trad_t * 1e3:.0f}ms",
            f"{ppr_t * 1e3:.0f}ms",
            f"{trad_t / ppr_t:.1f}x",
        )
    return ExperimentResult(
        "table2", "Critical-path computation", rows, table.render()
    )


# ----------------------------------------------------------------------
# Fig 7a — % reduction in repair time, codes x chunk sizes
# ----------------------------------------------------------------------
def fig7a_repair_reduction(
    codes: "Sequence[Tuple[int, int]]" = tuple(EVAL_CODES),
    chunk_sizes: "Sequence[str]" = ("8MiB", "16MiB", "32MiB", "64MiB"),
    runs: int = 3,
) -> ExperimentResult:
    table = Table(
        ["code"] + list(chunk_sizes),
        title="Fig 7a: reduction in repair time, PPR vs traditional RS",
    )
    rows = []
    peak = 0.0
    for k, m in codes:
        cells = [f"RS({k},{m})"]
        for chunk in chunk_sizes:
            star, _ = _mean_repair(
                lambda k=k, m=m: ReedSolomonCode(k, m), "star", chunk, runs
            )
            ppr, _ = _mean_repair(
                lambda k=k, m=m: ReedSolomonCode(k, m), "ppr", chunk, runs
            )
            reduction = 1 - ppr / star
            peak = max(peak, reduction)
            rows.append(
                {"k": k, "m": m, "chunk": chunk, "reduction": reduction,
                 "star_s": star, "ppr_s": ppr}
            )
            cells.append(fmt_percent(reduction))
        table.add_row(*cells)
    notes = (
        f"measured peak reduction {fmt_percent(peak)}; paper reports up to "
        f"{fmt_percent(paper.FIG7A_MAX_REDUCTION)}"
    )
    return ExperimentResult(
        "fig7a", "Repair-time reduction", rows,
        table.render() + "\n" + notes, notes,
    )


# ----------------------------------------------------------------------
# Fig 7b — repair time vs chunk size, RS(12,4)
# ----------------------------------------------------------------------
def fig7b_chunk_size_sweep(
    chunk_sizes: "Sequence[str]" = (
        "8MiB", "16MiB", "32MiB", "48MiB", "64MiB", "80MiB", "96MiB"
    ),
    runs: int = 2,
) -> ExperimentResult:
    table = Table(
        ["chunk", "traditional", "PPR", "reduction"],
        title="Fig 7b: traditional vs PPR repair time, RS(12,4)",
    )
    rows = []
    for chunk in chunk_sizes:
        star, _ = _mean_repair(lambda: ReedSolomonCode(12, 4), "star", chunk, runs)
        ppr, _ = _mean_repair(lambda: ReedSolomonCode(12, 4), "ppr", chunk, runs)
        reduction = 1 - ppr / star
        rows.append(
            {"chunk": chunk, "star_s": star, "ppr_s": ppr,
             "reduction": reduction}
        )
        table.add_row(
            chunk, f"{star:.2f}s", f"{ppr:.2f}s", fmt_percent(reduction)
        )
    notes = (
        "paper: 53% at 8MB rising to 57% at 96MB — the benefit grows with "
        "chunk size"
    )
    return ExperimentResult(
        "fig7b", "Chunk-size sweep", rows, table.render() + "\n" + notes,
        notes,
    )


# ----------------------------------------------------------------------
# Fig 7c — degraded read latency
# ----------------------------------------------------------------------
def fig7c_degraded_read(
    codes: "Sequence[Tuple[int, int]]" = tuple(EVAL_CODES),
    chunk_sizes: "Sequence[str]" = ("8MiB", "64MiB"),
    runs: int = 3,
) -> ExperimentResult:
    table = Table(
        ["code", "chunk", "traditional", "PPR", "reduction"],
        title="Fig 7c: degraded read latency",
    )
    rows = []
    for k, m in codes:
        for chunk in chunk_sizes:
            star, _ = _mean_repair(
                lambda k=k, m=m: ReedSolomonCode(k, m), "star", chunk, runs,
                degraded=True,
            )
            ppr, _ = _mean_repair(
                lambda k=k, m=m: ReedSolomonCode(k, m), "ppr", chunk, runs,
                degraded=True,
            )
            reduction = 1 - ppr / star
            rows.append(
                {"k": k, "m": m, "chunk": chunk, "star_s": star,
                 "ppr_s": ppr, "reduction": reduction}
            )
            table.add_row(
                f"RS({k},{m})", chunk, f"{star * 1e3:.0f}ms",
                f"{ppr * 1e3:.0f}ms", fmt_percent(reduction),
            )
    return ExperimentResult(
        "fig7c", "Degraded-read latency", rows, table.render()
    )


# ----------------------------------------------------------------------
# Fig 7d — degraded read throughput under constrained bandwidth
# ----------------------------------------------------------------------
def fig7d_constrained_bandwidth(
    bandwidths: "Sequence[str]" = ("1Gbps", "500Mbps", "200Mbps"),
    codes: "Sequence[Tuple[int, int]]" = ((6, 3), (12, 4)),
    chunk_size: str = "64MiB",
) -> ExperimentResult:
    table = Table(
        ["code", "bandwidth", "traditional MB/s", "PPR MB/s", "gain"],
        title="Fig 7d: degraded-read throughput under constrained bandwidth",
    )
    chunk = parse_size(chunk_size)
    rows = []
    for k, m in codes:
        for bw in bandwidths:
            star, _ = _mean_repair(
                lambda k=k, m=m: ReedSolomonCode(k, m), "star", chunk_size,
                1, degraded=True, link_bandwidth=bw,
            )
            ppr, _ = _mean_repair(
                lambda k=k, m=m: ReedSolomonCode(k, m), "ppr", chunk_size,
                1, degraded=True, link_bandwidth=bw,
            )
            star_tput = chunk / star / 1e6
            ppr_tput = chunk / ppr / 1e6
            gain = ppr_tput / star_tput
            rows.append(
                {"k": k, "m": m, "bandwidth": bw,
                 "star_mbps": star_tput, "ppr_mbps": ppr_tput, "gain": gain}
            )
            table.add_row(
                f"RS({k},{m})", bw, f"{star_tput:.1f}", f"{ppr_tput:.1f}",
                f"{gain:.2f}x",
            )
    notes = (
        "paper: at 200Mbps traditional drops to 1.2/0.8 MB/s while PPR "
        "holds 8.5/6.6 MB/s (7x and 8.25x); at 1Gbps gains are 1.8x/2.5x"
    )
    return ExperimentResult(
        "fig7d", "Constrained bandwidth", rows,
        table.render() + "\n" + notes, notes,
    )


# ----------------------------------------------------------------------
# Fig 7e — contribution of chunk caching
# ----------------------------------------------------------------------
def fig7e_caching(
    codes: "Sequence[Tuple[int, int]]" = ((6, 3), (12, 4)),
    chunk_sizes: "Sequence[str]" = ("8MiB", "64MiB"),
) -> ExperimentResult:
    table = Table(
        ["code", "chunk", "PPR cold", "PPR warm cache", "extra saving vs "
         "baseline"],
        title="Fig 7e: PPR with vs without chunk caching (baseline = "
        "traditional RS)",
    )
    rows = []
    for k, m in codes:
        for chunk in chunk_sizes:
            cluster = StorageCluster.smallsite()
            stripe = cluster.write_stripe(ReedSolomonCode(k, m), chunk)
            baseline = run_single_repair(cluster, stripe, 0, strategy="star")

            cluster_cold = StorageCluster.smallsite()
            stripe_cold = cluster_cold.write_stripe(
                ReedSolomonCode(k, m), chunk
            )
            cold = run_single_repair(
                cluster_cold, stripe_cold, 0, strategy="ppr"
            )

            cluster_warm = StorageCluster.smallsite()
            stripe_warm = cluster_warm.write_stripe(
                ReedSolomonCode(k, m), chunk
            )
            for cid in stripe_warm.chunk_ids:
                host = cluster_warm.metaserver.locate_chunk(cid)
                cluster_warm.chunk_server(host).warm_cache(cid)
            warm = run_single_repair(
                cluster_warm, stripe_warm, 0, strategy="ppr"
            )
            assert warm.cache_hits > 0

            cold_red = 1 - cold.duration / baseline.duration
            warm_red = 1 - warm.duration / baseline.duration
            rows.append(
                {"k": k, "m": m, "chunk": chunk,
                 "cold_reduction": cold_red, "warm_reduction": warm_red,
                 "extra": warm_red - cold_red}
            )
            table.add_row(
                f"RS({k},{m})", chunk, fmt_percent(cold_red),
                fmt_percent(warm_red), fmt_percent(warm_red - cold_red),
            )
    notes = (
        "paper: caching helps more at small k / small chunks; only ~2% "
        "extra at k=12, 64MB where network transfer dominates"
    )
    return ExperimentResult(
        "fig7e", "Caching contribution", rows,
        table.render() + "\n" + notes, notes,
    )


# ----------------------------------------------------------------------
# Fig 7f — computation time (real GF kernels)
# ----------------------------------------------------------------------
def fig7f_compute(
    codes: "Sequence[Tuple[int, int]]" = tuple(EVAL_CODES),
    buffer_bytes: int = 4 * MIB,
) -> ExperimentResult:
    """Measure actual numpy kernel time for serial vs PPR critical path.

    Serial (traditional): k scalar multiplies + k XOR accumulations at the
    repair site.  PPR critical path: one multiply + ceil(log2(k+1)) XORs.
    """
    import numpy as np

    from repro.galois.vector import addmul, scale

    rng = np.random.default_rng(0)
    table = Table(
        ["code", "traditional (measured)", "PPR critical path (measured)",
         "speedup"],
        title=f"Fig 7f: reconstruction computation time on "
        f"{buffer_bytes // MIB}MiB buffers (real numpy kernels)",
    )
    rows = []
    for k, m in codes:
        bufs = [
            rng.integers(0, 256, size=buffer_bytes, dtype=np.uint8)
            for _ in range(k)
        ]
        acc = np.zeros(buffer_bytes, dtype=np.uint8)
        start = time.perf_counter()
        for i, buf in enumerate(bufs):
            addmul(acc, (i % 254) + 2, buf)
        serial = time.perf_counter() - start

        steps = math.ceil(math.log2(k + 1))
        start = time.perf_counter()
        partial = scale(7, bufs[0])
        for i in range(steps):
            np.bitwise_xor(partial, bufs[i % k], out=partial)
        critical = time.perf_counter() - start
        rows.append(
            {"k": k, "serial_s": serial, "critical_s": critical,
             "speedup": serial / critical}
        )
        table.add_row(
            f"RS({k},{m})", f"{serial * 1e3:.1f}ms",
            f"{critical * 1e3:.1f}ms", f"{serial / critical:.1f}x",
        )
    notes = (
        "paper: PPR speeds up computation consistently, more at higher k "
        "(fewer multiplies + log-many XORs on the critical path)"
    )
    return ExperimentResult(
        "fig7f", "Computation time", rows, table.render() + "\n" + notes,
        notes,
    )


# ----------------------------------------------------------------------
# Fig 8 — m-PPR with simultaneous failures (BIGSITE)
# ----------------------------------------------------------------------
def fig8_mppr(
    failure_counts: "Sequence[int]" = (1, 2, 4),
    num_stripes: int = 40,
    chunk_size: str = "64MiB",
    seed: int = 11,
) -> ExperimentResult:
    table = Table(
        ["simultaneous server failures", "chunks lost",
         "traditional total", "m-PPR total", "reduction"],
        title="Fig 8: total repair time for simultaneous failures "
        "(BIGSITE, RS(12,4), 64MiB)",
    )
    rows = []
    for count in failure_counts:
        totals = {}
        lost_chunks = 0
        for strategy in ("star", "ppr"):
            cluster = StorageCluster.bigsite(seed=seed)
            rm = RepairManager(cluster, MPPRConfig(strategy=strategy))
            cluster.metaserver._repair_manager = rm
            cluster.metaserver.start_heartbeats()
            code = ReedSolomonCode(12, 4)
            for _ in range(num_stripes):
                cluster.write_stripe(code, chunk_size)
            cluster.run(until=6.0)
            lost = crash_random_servers(cluster, count, rng=seed)
            lost_chunks = sum(len(v) for v in lost.values())
            batch = rm.drain(max_time=50_000)
            assert batch.all_verified
            totals[strategy] = batch.total_time
        reduction = 1 - totals["ppr"] / totals["star"]
        rows.append(
            {"failures": count, "chunks": lost_chunks,
             "star_s": totals["star"], "ppr_s": totals["ppr"],
             "reduction": reduction}
        )
        table.add_row(
            count, lost_chunks, f"{totals['star']:.1f}s",
            f"{totals['ppr']:.1f}s", fmt_percent(reduction),
        )
    low, high = paper.FIG8_REDUCTION_RANGE
    notes = (
        f"paper: {fmt_percent(low)}-{fmt_percent(high)} reduction, "
        "shrinking as more simultaneous failures already spread traffic"
    )
    return ExperimentResult(
        "fig8", "m-PPR simultaneous failures", rows,
        table.render() + "\n" + notes, notes,
    )


# ----------------------------------------------------------------------
# §7.6 — Repair-Manager scalability
# ----------------------------------------------------------------------
def sec76_rm_scalability(
    codes: "Sequence[Tuple[int, int]]" = ((6, 3), (12, 4)),
    repeats: int = 50,
) -> ExperimentResult:
    """Wall-clock time to compute coefficients + build + map one PPR plan."""
    table = Table(
        ["code", "plan time (paper)", "plan time (ours)",
         "repairs/sec (paper)", "repairs/sec (ours)"],
        title="Sec 7.6: Repair-Manager plan-creation throughput",
    )
    rows = []
    for k, m in codes:
        code = ReedSolomonCode(k, m)
        alive = set(range(1, code.n))
        start = time.perf_counter()
        for _ in range(repeats):
            recipe = code.repair_recipe(0, alive)
            build_plan("ppr", recipe)
        elapsed = (time.perf_counter() - start) / repeats
        reported = paper.SEC76[f"RS({k},{m})"]
        rows.append(
            {"k": k, "plan_s": elapsed, "repairs_per_sec": 1.0 / elapsed,
             "paper_plan_ms": reported["plan_ms"],
             "paper_rps": reported["repairs_per_sec"]}
        )
        table.add_row(
            f"RS({k},{m})", f"{reported['plan_ms']}ms",
            f"{elapsed * 1e3:.1f}ms", reported["repairs_per_sec"],
            f"{1.0 / elapsed:.0f}",
        )
    return ExperimentResult(
        "sec76", "RM scalability", rows, table.render()
    )


# ----------------------------------------------------------------------
# Fig 9 — PPR over LRC and Rotated RS
# ----------------------------------------------------------------------
def fig9_overlay(chunk_size: str = "64MiB", runs: int = 2) -> ExperimentResult:
    variants: "List[Tuple[str, Callable[[], ErasureCode], str]]" = [
        ("RS(12,4)", lambda: ReedSolomonCode(12, 4), "star"),
        ("RS(12,4)+PPR", lambda: ReedSolomonCode(12, 4), "ppr"),
        ("LRC(12,2,2)", lambda: LocalReconstructionCode(12, 2, 2), "star"),
        ("LRC(12,2,2)+PPR", lambda: LocalReconstructionCode(12, 2, 2), "ppr"),
        ("RotRS(12,4)", lambda: RotatedReedSolomonCode(12, 4, r=4), "star"),
        ("RotRS(12,4)+PPR", lambda: RotatedReedSolomonCode(12, 4, r=4), "ppr"),
    ]
    durations: "Dict[str, float]" = {}
    rows = []
    for name, factory, strategy in variants:
        mean, _ = _mean_repair(factory, strategy, chunk_size, runs)
        durations[name] = mean
        rows.append({"variant": name, "duration_s": mean})
    baseline = durations["RS(12,4)"]
    for row in rows:
        row["reduction_vs_rs"] = 1 - row["duration_s"] / baseline  # type: ignore[operator]
    chart = bar_chart(
        [r["variant"] for r in rows],  # type: ignore[misc]
        [r["duration_s"] for r in rows],  # type: ignore[misc]
        unit="s",
        title=f"Fig 9: repair time with PPR over other codes ({chunk_size})",
    )
    lrc_extra = 1 - durations["LRC(12,2,2)+PPR"] / durations["LRC(12,2,2)"]
    rot_extra = 1 - durations["RotRS(12,4)+PPR"] / durations["RotRS(12,4)"]
    notes = (
        f"extra reduction from PPR: {fmt_percent(lrc_extra)} on LRC "
        f"(paper ~{fmt_percent(paper.FIG9_LRC_PPR_EXTRA)}), "
        f"{fmt_percent(rot_extra)} on Rotated RS; paper reports RotRS+PPR "
        f"{fmt_percent(paper.FIG9_ROTRS_PPR_EXTRA)} below traditional RS"
    )
    return ExperimentResult(
        "fig9", "PPR over LRC / Rotated RS", rows, chart + "\n" + notes,
        notes,
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def ablation_tree_shapes(
    k: int = 12, m: int = 4, chunk_size: str = "64MiB"
) -> ExperimentResult:
    """star vs staggered vs PPR — why the binomial tree, not simpler fixes."""
    table = Table(
        ["strategy", "repair time", "network busy", "max ingress (chunks)"],
        title=f"Ablation: repair strategies, RS({k},{m}), {chunk_size}",
    )
    chunk = parse_size(chunk_size)
    rows = []
    for strategy in ("star", "staggered", "ppr"):
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(ReedSolomonCode(k, m), chunk_size)
        result = run_single_repair(cluster, stripe, 0, strategy=strategy)
        ingress = result.traffic.max_ingress()[1] / chunk
        rows.append(
            {"strategy": strategy, "duration_s": result.duration,
             "network_s": result.phase_busy["network"],
             "max_ingress_chunks": ingress}
        )
        table.add_row(
            strategy, f"{result.duration:.2f}s",
            f"{result.phase_busy['network']:.2f}s", f"{ingress:.1f}",
        )
    return ExperimentResult(
        "ablation_trees", "Strategy ablation", rows, table.render()
    )


def ablation_mppr_weights(
    num_stripes: int = 40, seed: int = 5
) -> ExperimentResult:
    """m-PPR's weighted selection vs a weight-blind RM."""
    results = {}
    for label, alpha in (("weighted", 0.12), ("degenerate", 0.0)):
        cluster = StorageCluster.bigsite(seed=seed)
        config = MPPRConfig(strategy="ppr", alpha=alpha)
        rm = RepairManager(cluster, config)
        if label == "degenerate":
            # Blind the RM: every server looks identical.
            rm.source_weight = lambda *a, **k: 0.0  # type: ignore[assignment]
            rm.destination_weight = lambda *a, **k: 0.0  # type: ignore[assignment]
        cluster.metaserver._repair_manager = rm
        cluster.metaserver.start_heartbeats()
        for _ in range(num_stripes):
            cluster.write_stripe(ReedSolomonCode(12, 4), "64MiB")
        cluster.run(until=6.0)
        crash_random_servers(cluster, 2, rng=seed)
        batch = rm.drain(max_time=50_000)
        results[label] = batch.total_time
    table = Table(
        ["RM variant", "batch total time"],
        title="Ablation: m-PPR weights vs weight-blind scheduling",
    )
    rows = []
    for label, total in results.items():
        rows.append({"variant": label, "total_s": total})
        table.add_row(label, f"{total:.1f}s")
    return ExperimentResult(
        "ablation_weights", "m-PPR weight ablation", rows, table.render()
    )


def run_all(quick: bool = True) -> "List[ExperimentResult]":
    """Run every experiment (used by `python -m repro.analysis`)."""
    out = [
        table1(),
        fig1_phase_breakdown(),
        fig4_link_traffic(),
        theorem1_network_times(),
        table2_critical_path(),
        fig7a_repair_reduction(runs=1 if quick else 5),
        fig7b_chunk_size_sweep(runs=1 if quick else 5),
        fig7c_degraded_read(runs=1 if quick else 5),
        fig7d_constrained_bandwidth(),
        fig7e_caching(),
        fig7f_compute(buffer_bytes=(1 if quick else 16) * MIB),
        fig8_mppr(failure_counts=(1, 2) if quick else (1, 2, 4, 6, 8, 10)),
        sec76_rm_scalability(repeats=10 if quick else 100),
        fig9_overlay(runs=1 if quick else 5),
        ablation_tree_shapes(),
        ablation_mppr_weights(num_stripes=20 if quick else 60),
    ]
    return out
