"""Workload and failure generators used by the experiments.

* :mod:`repro.workloads.failures` — failure injection: single server
  crashes (§7.1), simultaneous crashes (§7.5), and transient-failure
  traces following the statistics the paper cites (Ford et al.: ~90% of
  failure events are transient; Rashmi et al.: ~50 machine-unavailability
  events/day in a multi-thousand-node DC).
* :mod:`repro.workloads.userload` — background user traffic that fills
  the m-PPR weight equations' ``userLoad`` term and warms chunk caches.
"""

from repro.workloads.failures import (
    FailureEvent,
    FailureInjector,
    FailureTrace,
    crash_busiest_server,
    crash_random_servers,
)
from repro.workloads.userload import UserLoadGenerator

__all__ = [
    "FailureEvent",
    "FailureInjector",
    "FailureTrace",
    "crash_busiest_server",
    "crash_random_servers",
    "UserLoadGenerator",
]
