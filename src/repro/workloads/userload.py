"""Background user traffic.

Generates client reads of random stored chunks at a configurable rate.
Two effects matter for the paper's mechanisms: the traffic populates each
server's ``user_load_bytes`` (consumed by m-PPR's weight equations through
heartbeats) and warms the LRU chunk caches (the ``hasCache`` term and the
Fig. 7e caching experiment).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.qos.slo import LatencyReservoir
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


class UserLoadGenerator:
    """Poisson client reads over the stored chunk population."""

    def __init__(
        self,
        cluster: "StorageCluster",
        reads_per_second: float = 2.0,
        zipf_exponent: "Optional[float]" = 1.2,
        rng: "np.random.Generator | int | None" = None,
    ):
        if reads_per_second <= 0:
            raise ConfigurationError("reads_per_second must be positive")
        self.cluster = cluster
        self.reads_per_second = reads_per_second
        self.zipf_exponent = zipf_exponent
        self.rng = make_rng(rng)
        self.reads_issued = 0
        #: Bounded latency log: exact count/mean/min/max forever, raw
        #: samples capped by reservoir sampling so week-long simulated
        #: runs cannot grow memory without bound.  Iterates like the
        #: plain list it replaced.
        self.latencies = LatencyReservoir(capacity=4096)
        self._running = False
        #: user_load decays over time; bytes added per read at the server.
        self.load_decay_interval = 10.0

    def start(self, duration: float) -> None:
        """Schedule reads over ``[now, now + duration)`` virtual seconds."""
        self._running = True
        self.cluster.sim.schedule(
            float(self.rng.exponential(1.0 / self.reads_per_second)),
            self._tick,
            self.cluster.sim.now + duration,
        )
        self.cluster.sim.schedule(self.load_decay_interval, self._decay)

    def stop(self) -> None:
        self._running = False

    def _pick_chunk(self) -> "Optional[str]":
        chunk_ids = sorted(self.cluster.metaserver.chunk_locations)
        if not chunk_ids:
            return None
        if self.zipf_exponent is None:
            index = int(self.rng.integers(0, len(chunk_ids)))
        else:
            # Zipf-ish popularity: rank r picked with weight r^-s.
            ranks = np.arange(1, len(chunk_ids) + 1, dtype=float)
            weights = ranks ** (-self.zipf_exponent)
            weights /= weights.sum()
            index = int(self.rng.choice(len(chunk_ids), p=weights))
        return chunk_ids[index]

    def _tick(self, end_time: float) -> None:
        if not self._running or self.cluster.sim.now >= end_time:
            return
        chunk_id = self._pick_chunk()
        if chunk_id is not None:
            host = self.cluster.metaserver.locate_chunk(chunk_id)
            if host is not None:
                server = self.cluster.servers[host]
                stripe = self.cluster.metaserver.stripe_for_chunk(chunk_id)
                # Model the read: bump user load, warm the cache, and move
                # the bytes to a client so links see the traffic.
                server.user_load_bytes += stripe.chunk_size
                if not server.lookup_cache(chunk_id):
                    server.disk.read(stripe.chunk_size)
                    server.fill_cache(chunk_id)
                start = self.cluster.sim.now
                self.reads_issued += 1
                client = self.cluster.client_ids[
                    self.reads_issued % len(self.cluster.client_ids)
                ]
                self.cluster.start_flow(
                    host,
                    client,
                    stripe.chunk_size,
                    lambda _f, s=start: self.latencies.append(
                        self.cluster.sim.now - s
                    ),
                )
        self.cluster.sim.schedule(
            float(self.rng.exponential(1.0 / self.reads_per_second)),
            self._tick,
            end_time,
        )

    def _decay(self) -> None:
        """Halve user-load counters periodically (sliding-window-ish)."""
        if not self._running:
            return
        for server in self.cluster.servers.values():
            server.user_load_bytes *= 0.5
        self.cluster.sim.schedule(self.load_decay_interval, self._decay)
