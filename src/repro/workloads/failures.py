"""Failure injection.

The paper's evaluation kills chunk servers to trigger repairs (§7.1, §7.5)
and motivates degraded reads with datacenter failure statistics: ~90% of
failure events are transient (Ford et al. / Sathiamoorthy et al.), and a
few-thousand-node cluster sees ~50 machine-unavailability events per day
(Rashmi et al.).  :class:`FailureTrace` synthesizes event streams with
those proportions for long-running experiments.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure."""

    time: float
    server_id: str
    #: "transient" failures recover after ``duration``; "permanent" do not.
    kind: str
    duration: float = 0.0
    #: Shared root cause, e.g. ``"burst:3:rack2"`` for rack-correlated
    #: events; empty for independent failures.
    cause: str = ""


def crash_busiest_server(cluster: "StorageCluster") -> "tuple[str, List[str]]":
    """Kill the alive server hosting the most chunks (maximizes repairs).

    Returns ``(server_id, lost_chunk_ids)``.
    """
    counts = collections.Counter(
        host
        for host in cluster.metaserver.chunk_locations.values()
        if cluster.servers[host].alive
    )
    if not counts:
        raise ConfigurationError("no chunks written yet")
    victim = counts.most_common(1)[0][0]
    return victim, cluster.kill_server(victim)


def crash_random_servers(
    cluster: "StorageCluster",
    count: int,
    rng: "np.random.Generator | int | None" = None,
) -> "Dict[str, List[str]]":
    """Kill ``count`` random alive chunk-hosting servers (§7.5 methodology).

    Returns ``server_id -> lost chunk ids``.
    """
    rng = make_rng(rng)
    hosting = sorted(
        {
            host
            for host in cluster.metaserver.chunk_locations.values()
            if cluster.servers[host].alive
        }
    )
    if count > len(hosting):
        raise ConfigurationError(
            f"cannot crash {count} of {len(hosting)} hosting servers"
        )
    victims = rng.choice(hosting, size=count, replace=False)
    return {v: cluster.kill_server(v) for v in victims}


class FailureTrace:
    """Synthetic failure event stream with datacenter-like statistics.

    Besides independent per-server events, the trace can inject
    *rack-correlated bursts* (power outage, rack-switch loss): a Poisson
    process per the whole cluster picks a rack, every server in that rack
    goes down at the same instant with a shared ``cause`` tag, and each
    server recovers independently after its own sampled downtime — the
    correlated-failure pattern Sathiamoorthy et al. and Ford et al. report
    as the dominant data-loss risk.  Bursts require ``rack_of`` (server id
    -> rack index) and are off by default (``burst_rate_per_hour=0``).
    """

    def __init__(
        self,
        server_ids: "Sequence[str]",
        events_per_hour: float = 2.0,
        transient_fraction: float = 0.9,
        transient_duration: float = 900.0,  # Google delays repairs 15 min
        rng: "np.random.Generator | int | None" = None,
        rack_of: "Optional[Mapping[str, int]]" = None,
        burst_rate_per_hour: float = 0.0,
        burst_recovery: float = 1800.0,
    ):
        if not server_ids:
            raise ConfigurationError("need at least one server")
        if not 0.0 <= transient_fraction <= 1.0:
            raise ConfigurationError("transient_fraction must be in [0, 1]")
        if events_per_hour <= 0:
            raise ConfigurationError("events_per_hour must be positive")
        if burst_rate_per_hour < 0:
            raise ConfigurationError("burst_rate_per_hour must be >= 0")
        if burst_rate_per_hour > 0 and not rack_of:
            raise ConfigurationError("bursts require a rack_of mapping")
        self.server_ids = list(server_ids)
        self.events_per_hour = events_per_hour
        self.transient_fraction = transient_fraction
        self.transient_duration = transient_duration
        self.rack_of = dict(rack_of) if rack_of else {}
        self.burst_rate_per_hour = burst_rate_per_hour
        self.burst_recovery = burst_recovery
        self.rng = make_rng(rng)

    def generate(self, duration_hours: float) -> "List[FailureEvent]":
        """Poisson arrivals; each event picks a server uniformly.

        Independent events are drawn first, then burst events, each from
        its own sequential sweep of the shared rng, so a given seed always
        yields the identical stream.  The merged list is sorted by time
        (stable, so same-instant burst members keep server order).
        """
        events = self._independent_events(duration_hours)
        events.extend(self._burst_events(duration_hours))
        events.sort(key=lambda e: (e.time, e.server_id))
        return events

    def _independent_events(
        self, duration_hours: float
    ) -> "List[FailureEvent]":
        events: "List[FailureEvent]" = []
        time_hours = 0.0
        while True:
            time_hours += float(
                self.rng.exponential(1.0 / self.events_per_hour)
            )
            if time_hours >= duration_hours:
                break
            server = str(self.rng.choice(self.server_ids))
            transient = bool(self.rng.random() < self.transient_fraction)
            events.append(
                FailureEvent(
                    time=time_hours * 3600.0,
                    server_id=server,
                    kind="transient" if transient else "permanent",
                    duration=self.transient_duration if transient else 0.0,
                )
            )
        return events

    def _burst_events(self, duration_hours: float) -> "List[FailureEvent]":
        if self.burst_rate_per_hour <= 0:
            return []
        racks = sorted(set(self.rack_of.values()))
        members: "Dict[int, List[str]]" = collections.defaultdict(list)
        for server in self.server_ids:
            rack = self.rack_of.get(server)
            if rack is not None:
                members[rack].append(server)
        events: "List[FailureEvent]" = []
        time_hours = 0.0
        burst_index = 0
        while True:
            time_hours += float(
                self.rng.exponential(1.0 / self.burst_rate_per_hour)
            )
            if time_hours >= duration_hours:
                break
            rack = int(self.rng.choice(racks))
            cause = f"burst:{burst_index}:rack{rack}"
            burst_index += 1
            # Shared root cause, per-machine recovery: every server in the
            # rack drops at the same instant but comes back on its own
            # (exponential) schedule, like operators re-racking one by one.
            for server in members[rack]:
                events.append(
                    FailureEvent(
                        time=time_hours * 3600.0,
                        server_id=server,
                        kind="transient",
                        duration=float(
                            self.rng.exponential(self.burst_recovery)
                        ),
                        cause=cause,
                    )
                )
        return events


class FailureInjector:
    """Replays a failure trace into a running cluster simulation.

    Transient failures mark the server dead and revive it after the
    event's duration — the scenario where degraded reads happen and
    proactive repair is wasteful (§1, §5).
    """

    def __init__(self, cluster: "StorageCluster"):
        self.cluster = cluster
        self.injected: "List[FailureEvent]" = []

    def schedule(self, events: "Sequence[FailureEvent]") -> None:
        for event in events:
            self.cluster.sim.schedule_at(event.time, self._fire, event)

    def _fire(self, event: FailureEvent) -> None:
        server = self.cluster.servers.get(event.server_id)
        if server is None or not server.alive:
            return
        self.injected.append(event)
        if event.kind == "permanent":
            self.cluster.kill_server(event.server_id)
            return
        # Transient: stop serving without meta-server notification; the
        # heartbeat sweep may or may not notice depending on duration.
        server.alive = False
        self.cluster.sim.schedule(event.duration, self._revive, event.server_id)

    def _revive(self, server_id: str) -> None:
        server = self.cluster.servers.get(server_id)
        if server is None:
            return
        meta = self.cluster.metaserver
        if server_id in meta.dead_servers:
            return  # already declared dead and repaired around
        server.alive = True
