"""Small argument-validation helpers raising :class:`ConfigurationError`."""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and return it."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high`` and return it."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def check_type(name: str, value: Any, expected: type) -> Any:
    """Require ``isinstance(value, expected)`` and return it."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
