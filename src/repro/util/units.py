"""Byte-size and bandwidth units, parsing, and human-readable formatting.

The paper mixes decimal network units (1 Gbps = 1e9 bits/s) with binary
storage units (64MB chunks, meaning 64 * 2**20 bytes in QFS).  To keep the
two regimes explicit this module exposes both decimal (``KB``/``MB``/``GB``)
and binary (``KIB``/``MIB``/``GIB``) constants and a :class:`Bandwidth`
value type that always stores bytes/second internally.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ConfigurationError

# Decimal byte units (used for network-ish quantities).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary byte units (used for storage-ish quantities; QFS chunks are MiB).
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?i?B?)\s*$", re.IGNORECASE
)
_BW_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?)(?P<kind>bps|b/s|B/s|Bps)\s*$"
)

_DECIMAL_MULT = {"": 1, "K": KB, "M": MB, "G": GB, "T": 10**12}
_BINARY_MULT = {"": 1, "K": KIB, "M": MIB, "G": GIB, "T": 1 << 40}


def parse_size(text: "str | int | float") -> int:
    """Parse a byte size such as ``"64MiB"``, ``"8MB"``, or a raw number.

    Decimal suffixes (``MB``) use powers of ten, binary suffixes (``MiB``)
    powers of two.  A bare number is taken as bytes.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigurationError(f"size must be non-negative, got {text}")
        return int(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigurationError(f"unparseable size: {text!r}")
    num = float(match.group("num"))
    unit = match.group("unit")
    prefix = unit[:1].upper() if unit and unit[0].upper() in "KMGT" else ""
    binary = "i" in unit.lower()
    mult = (_BINARY_MULT if binary else _DECIMAL_MULT)[prefix]
    return int(num * mult)


def parse_bandwidth(text: "str | int | float") -> float:
    """Parse a bandwidth such as ``"1Gbps"``, ``"200Mbps"``, ``"125MB/s"``.

    Returns bytes/second.  Lower-case ``b`` means bits, upper-case ``B``
    bytes, matching networking convention.  A bare number is bytes/second.
    """
    if isinstance(text, (int, float)):
        if text <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {text}")
        return float(text)
    match = _BW_RE.match(text)
    if not match:
        raise ConfigurationError(f"unparseable bandwidth: {text!r}")
    num = float(match.group("num"))
    mult = _DECIMAL_MULT[match.group("unit").upper()]
    kind = match.group("kind")
    bits = kind in ("bps", "b/s")
    value = num * mult / (8.0 if bits else 1.0)
    if value <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {text!r}")
    return value


@dataclass(frozen=True)
class Bandwidth:
    """A link or device bandwidth, stored as bytes/second.

    >>> Bandwidth.of("1Gbps").bytes_per_sec
    125000000.0
    """

    bytes_per_sec: float

    @classmethod
    def of(cls, value: "str | int | float | Bandwidth") -> "Bandwidth":
        if isinstance(value, Bandwidth):
            return value
        return cls(parse_bandwidth(value))

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` at this rate with no contention."""
        return nbytes / self.bytes_per_sec

    def __str__(self) -> str:
        return fmt_rate(self.bytes_per_sec)


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count using binary units (storage convention)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.4g}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_sec: float) -> str:
    """Human-readable bandwidth in bits/s (network convention)."""
    bits = bytes_per_sec * 8.0
    for unit in ("bps", "Kbps", "Mbps", "Gbps", "Tbps"):
        if abs(bits) < 1000.0 or unit == "Tbps":
            return f"{bits:.4g}{unit}"
        bits /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration (``1.5ms``, ``2.34s``, ``3m05s``)."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    if seconds < 120.0:
        return f"{seconds:.3g}s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)}m{secs:04.1f}s"
