"""Shared utilities: unit parsing/formatting, validation, deterministic RNG."""

from repro.util.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    Bandwidth,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    parse_bandwidth,
    parse_size,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)
from repro.util.rng import make_rng

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "Bandwidth",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "parse_bandwidth",
    "parse_size",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "make_rng",
]
