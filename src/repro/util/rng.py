"""Deterministic random number generation.

All stochastic behaviour in the library (placement, failure injection,
workloads) flows through numpy Generators created here so experiments are
reproducible from a single seed.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy Generator.

    Passing an existing Generator returns it unchanged, so components can
    share a stream; passing an int (or None) creates a fresh one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: "int | None", *path: object) -> np.random.Generator:
    """An independent, named child stream under ``seed``.

    Components that must not perturb each other's draws — stripe
    placement vs payload generation, one reliability-matrix cell vs the
    next — derive their own stream from the experiment seed plus a
    stable path of labels::

        derive_rng(2016, "placement")
        derive_rng(2016, "matrix", "ppr", "msr(6,3)", "copyset")

    Each path element is hashed (sha256, platform-independent — *not*
    ``hash()``, which is salted per process) into a ``SeedSequence``
    spawn key, so streams are statistically independent, reproducible
    across runs and machines, and insensitive to the order other
    components consume their own streams in.
    """
    keys = [
        int.from_bytes(
            hashlib.sha256(str(part).encode("utf-8")).digest()[:8], "big"
        )
        for part in path
    ]
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=keys)
    )
