"""Deterministic random number generation.

All stochastic behaviour in the library (placement, failure injection,
workloads) flows through numpy Generators created here so experiments are
reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy Generator.

    Passing an existing Generator returns it unchanged, so components can
    share a stream; passing an int (or None) creates a fresh one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
