"""N-way replication expressed as a degenerate erasure code.

Used as the cost/reliability comparison point from the paper's
introduction: 3x replication stores 3x bytes, tolerates 2 losses, and
repairs by copying a single chunk (``1 x C`` of repair traffic, versus
``k x C`` for RS).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError, UnrecoverableError
from repro.codes.base import ErasureCode
from repro.codes.recipe import RepairRecipe, whole_chunk_recipe


class ReplicationCode(ErasureCode):
    """``copies``-way replication of a single chunk (k = 1)."""

    def __init__(self, copies: int = 3):
        if copies < 1:
            raise ConfigurationError(f"need copies >= 1, got {copies}")
        self._copies = copies

    @property
    def name(self) -> str:
        return f"REP({self._copies})"

    @property
    def k(self) -> int:
        return 1

    @property
    def n(self) -> int:
        return self._copies

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validated_data(data)
        return np.repeat(data, self._copies, axis=0)

    def decode_data(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        indices = self._validated_alive(available.keys(), lost=None)
        if not indices:
            raise UnrecoverableError("REP: all replicas lost")
        chunk = np.asarray(available[indices[0]], dtype=np.uint8)
        return chunk.reshape(1, -1)

    def repair_recipe(self, lost: int, alive: Iterable[int]) -> RepairRecipe:
        alive_list = self._validated_alive(alive, lost=lost)
        if not alive_list:
            raise UnrecoverableError("REP: all replicas lost")
        return whole_chunk_recipe(lost, {alive_list[0]: 1})

    def is_recoverable(self, alive: Iterable[int]) -> bool:
        return bool(self._validated_alive(alive, lost=None))
