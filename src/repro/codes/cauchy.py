"""Cauchy Reed-Solomon: the ``[I ; Cauchy]`` systematic MDS construction.

Functionally interchangeable with :class:`ReedSolomonCode` (same k/m
semantics, same repair cost); provided because Jerasure-based systems (the
paper's QFS prototype among them) frequently use the Cauchy construction,
and because having two independent MDS constructions lets the tests
cross-check the coding layer.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.codes.linear import GeneratorMatrixCode
from repro.linalg.builders import systematic_cauchy_generator


class CauchyReedSolomonCode(GeneratorMatrixCode):
    """Systematic Cauchy-RS over GF(2^8)."""

    def __init__(self, k: int, m: int):
        if m < 1:
            raise ConfigurationError(f"Cauchy-RS needs m >= 1, got {m}")
        self._m = m
        super().__init__(systematic_cauchy_generator(k, m))

    @property
    def name(self) -> str:
        return f"CRS({self.k},{self._m})"

    @property
    def m(self) -> int:
        """Number of parity chunks."""
        return self._m
