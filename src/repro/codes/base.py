"""The common interface all erasure codes implement.

A code sees a *stripe* as ``n = k + parity`` equal-size chunks derived from
``k`` data chunks.  Buffers are numpy uint8 arrays; blob helpers handle
padding arbitrary ``bytes`` payloads in and out of stripes.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Mapping

import numpy as np

from repro.errors import CodingError, UnrecoverableError
from repro.codes.recipe import RepairRecipe


class ErasureCode(abc.ABC):
    """Abstract erasure code over GF(2^8).

    Subclasses define :attr:`k`, :attr:`n`, :attr:`rows` (sub-chunks per
    chunk; 1 unless the code subdivides chunks like Rotated RS), encoding,
    and repair-recipe construction.
    """

    #: Sub-chunks ("rows") per chunk.  Chunk byte length must divide by this.
    rows: int = 1

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable name, e.g. ``"RS(6,3)"``."""

    @property
    @abc.abstractmethod
    def k(self) -> int:
        """Number of data chunks per stripe."""

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Total chunks per stripe (data + parity)."""

    @property
    def num_parity(self) -> int:
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        """Raw bytes stored per user byte (1.5 for RS(4,2), 3.0 for 3-rep)."""
        return self.n / self.k

    @property
    def fault_tolerance(self) -> int:
        """Guaranteed number of simultaneous chunk losses survivable."""
        return self.num_parity

    def data_indices(self) -> range:
        return range(self.k)

    def parity_indices(self) -> range:
        return range(self.k, self.n)

    # ------------------------------------------------------------------
    # Core coding operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(k, chunk_len)`` data stack into ``(n, chunk_len)``."""

    @abc.abstractmethod
    def decode_data(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        """Recover the ``(k, chunk_len)`` data stack from surviving chunks.

        Raises :class:`UnrecoverableError` if the survivors are not enough.
        """

    @abc.abstractmethod
    def repair_recipe(
        self, lost: int, alive: Iterable[int]
    ) -> RepairRecipe:
        """The linear repair equation for chunk ``lost`` given survivors.

        Implementations should prefer cheap equations (locality, minimal
        sub-chunk reads) when the code offers them.
        """

    def is_recoverable(self, alive: Iterable[int]) -> bool:
        """Whether the full data stripe can be recovered from ``alive``."""
        alive_set = self._validated_alive(alive, lost=None)
        try:
            probe = np.zeros((self.k, self.rows), dtype=np.uint8)
            encoded = self.encode(probe)
            self.decode_data({i: encoded[i] for i in alive_set})
            return True
        except UnrecoverableError:
            return False

    def reconstruct(
        self, lost: int, available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild one chunk from survivors using the repair recipe."""
        recipe = self.repair_recipe(lost, available.keys())
        return recipe.execute(available)

    # ------------------------------------------------------------------
    # Validation helpers for subclasses
    # ------------------------------------------------------------------
    def _validated_data(self, data: np.ndarray) -> np.ndarray:
        array = np.asarray(data, dtype=np.uint8)
        if array.ndim != 2 or array.shape[0] != self.k:
            raise CodingError(
                f"{self.name}: expected ({self.k}, L) data stack, "
                f"got shape {array.shape}"
            )
        if array.shape[1] % self.rows:
            raise CodingError(
                f"{self.name}: chunk length {array.shape[1]} not divisible "
                f"by {self.rows} rows"
            )
        return array

    def _validated_alive(
        self, alive: Iterable[int], lost: "int | None"
    ) -> "List[int]":
        alive_list = sorted(set(alive))
        for index in alive_list:
            if not 0 <= index < self.n:
                raise CodingError(f"chunk index {index} out of range")
        if lost is not None:
            if not 0 <= lost < self.n:
                raise CodingError(f"lost index {lost} out of range")
            alive_list = [i for i in alive_list if i != lost]
        return alive_list

    # ------------------------------------------------------------------
    # Blob (bytes) helpers
    # ------------------------------------------------------------------
    def chunk_length(self, blob_size: int) -> int:
        """Chunk byte length used to store a blob of ``blob_size`` bytes."""
        per_chunk = -(-blob_size // self.k)  # ceil division
        remainder = per_chunk % self.rows
        if remainder:
            per_chunk += self.rows - remainder
        return max(per_chunk, self.rows)

    def encode_blob(self, blob: bytes) -> "List[np.ndarray]":
        """Split + pad a byte string into k data chunks and encode."""
        chunk_len = self.chunk_length(len(blob))
        padded = np.zeros(self.k * chunk_len, dtype=np.uint8)
        padded[: len(blob)] = np.frombuffer(blob, dtype=np.uint8)
        encoded = self.encode(padded.reshape(self.k, chunk_len))
        return [encoded[i] for i in range(self.n)]

    def decode_blob(
        self, available: Mapping[int, np.ndarray], blob_size: int
    ) -> bytes:
        """Inverse of :meth:`encode_blob`."""
        data = self.decode_data(available)
        return data.reshape(-1)[:blob_size].tobytes()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
