"""Local Reconstruction Codes (Azure-style), Huang et al. ATC'12.

An LRC(k, l, g) stripe holds k data chunks split into l equal local groups,
one XOR *local parity* per group, and g *global parities* (Cauchy rows over
all data).  Chunk layout::

    [0 .. k-1]           data
    [k .. k+l-1]         local parities (group 0 .. l-1)
    [k+l .. k+l+g-1]     global parities

A single data-chunk failure repairs from its local group: k/l data chunks +
the local parity = k/l + 1 reads instead of k — the repair-traffic saving
the paper's Fig. 9 overlays PPR on.  The price is storage overhead
(k+l+g)/k > (k+g)/k and a guaranteed distance of only g+1 arbitrary
failures (information-theoretic limit; some (g+2)-failure patterns also
decode, checked probabilistically in the tests).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.codes.linear import GeneratorMatrixCode
from repro.linalg.builders import cauchy_matrix
from repro.linalg.matrix import GFMatrix

import numpy as np


def _lrc_generator(k: int, l: int, g: int) -> GFMatrix:
    rows = np.zeros((k + l + g, k), dtype=np.uint8)
    rows[:k, :k] = np.eye(k, dtype=np.uint8)
    group_size = k // l
    for group in range(l):
        start = group * group_size
        rows[k + group, start : start + group_size] = 1
    if g:
        rows[k + l :, :] = cauchy_matrix(g, k).data
    return GFMatrix(rows)


class LocalReconstructionCode(GeneratorMatrixCode):
    """Azure LRC(k, l, g) with XOR local parities and Cauchy globals.

    >>> code = LocalReconstructionCode(12, 2, 2)
    >>> code.name
    'LRC(12,2,2)'
    >>> len(code.repair_recipe(0, range(1, 16)).helpers)   # local repair
    6
    """

    def __init__(self, k: int, l: int, g: int):
        if l < 1:
            raise ConfigurationError(f"LRC needs l >= 1 local groups, got {l}")
        if g < 0:
            raise ConfigurationError(f"LRC needs g >= 0 globals, got {g}")
        if k % l:
            raise ConfigurationError(
                f"LRC group count l={l} must divide k={k}"
            )
        self._l = l
        self._g = g
        super().__init__(_lrc_generator(k, l, g))

    @property
    def name(self) -> str:
        return f"LRC({self.k},{self._l},{self._g})"

    @property
    def num_local(self) -> int:
        return self._l

    @property
    def num_global(self) -> int:
        return self._g

    @property
    def group_size(self) -> int:
        return self.k // self._l

    @property
    def fault_tolerance(self) -> int:
        """Guaranteed arbitrary-failure tolerance (distance g+2 => g+1)."""
        return self._g + 1

    def group_of(self, index: int) -> "int | None":
        """Local group of a data chunk or local parity; None for globals."""
        if 0 <= index < self.k:
            return index // self.group_size
        if self.k <= index < self.k + self._l:
            return index - self.k
        return None

    def group_members(self, group: int) -> List[int]:
        """Data chunk indices of ``group`` plus its local parity, in order."""
        start = group * self.group_size
        members = list(range(start, start + self.group_size))
        members.append(self.k + group)
        return members

    def helper_preference(self, lost: int, alive: Sequence[int]) -> List[int]:
        """Prefer the lost chunk's local group so repairs stay local."""
        group = self.group_of(lost)
        alive_set = set(alive)
        preferred: List[int] = []
        if group is not None:
            preferred = [
                i for i in self.group_members(group)
                if i in alive_set and i != lost
            ]
        rest = [i for i in sorted(alive_set) if i not in preferred]
        return preferred + rest
