"""Repair recipes: the linear equation a repair executes.

A :class:`RepairRecipe` describes how to rebuild one lost chunk from
surviving chunks as a sparse linear map per helper:

    lost[row] = XOR over terms of coeff * helper_chunk[helper_row]

For whole-chunk codes (RS, LRC) ``rows == 1`` and each helper contributes a
single coefficient — the paper's ``R = a1*C1 + a2*C2 + ...`` (§4.1).  For
sub-chunk codes (Rotated RS) a helper may contribute only some of its rows
to only some of the lost chunk's rows, which is where the read savings come
from.

The recipe is *where* PPR's associativity argument lives: partial results
(dicts ``lost_row -> buffer``) XOR-merge in any grouping, so a binomial
reduction tree computes exactly the same bytes as central decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import CodingError, PlanError
from repro.galois.vector import addmul


@dataclass(frozen=True)
class RecipeTerm:
    """One helper chunk's contribution to the lost chunk.

    ``entries`` is a tuple of ``(lost_row, helper_row, coeff)`` triples with
    nonzero coefficients.
    """

    helper: int
    entries: Tuple[Tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise PlanError(f"recipe term for helper {self.helper} is empty")
        for lost_row, helper_row, coeff in self.entries:
            if coeff == 0 or not 0 <= coeff < 256:
                raise PlanError(f"bad coefficient {coeff} in recipe term")
            if lost_row < 0 or helper_row < 0:
                raise PlanError("negative row index in recipe term")

    @property
    def read_rows(self) -> "frozenset[int]":
        """Helper rows that must be read from the helper's chunk."""
        return frozenset(helper_row for _, helper_row, _ in self.entries)

    @property
    def output_rows(self) -> "frozenset[int]":
        """Lost-chunk rows this helper's partial result covers."""
        return frozenset(lost_row for lost_row, _, _ in self.entries)


@dataclass(frozen=True)
class RepairRecipe:
    """The full linear equation rebuilding chunk ``lost`` of a stripe."""

    lost: int
    rows: int
    terms: Tuple[RecipeTerm, ...]

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise PlanError(f"rows must be >= 1, got {self.rows}")
        seen = set()
        for term in self.terms:
            if term.helper == self.lost:
                raise PlanError("lost chunk cannot be its own helper")
            if term.helper in seen:
                raise PlanError(f"duplicate helper {term.helper} in recipe")
            seen.add(term.helper)
            for lost_row, helper_row, _ in term.entries:
                if lost_row >= self.rows or helper_row >= self.rows:
                    raise PlanError("row index out of range in recipe")

    # ------------------------------------------------------------------
    # Introspection used by planners and the simulator
    # ------------------------------------------------------------------
    @property
    def helpers(self) -> "tuple[int, ...]":
        return tuple(term.helper for term in self.terms)

    def term_for(self, helper: int) -> RecipeTerm:
        for term in self.terms:
            if term.helper == helper:
                return term
        raise PlanError(f"helper {helper} not in recipe")

    def read_fraction(self, helper: int) -> float:
        """Fraction of the helper's chunk read from disk."""
        return len(self.term_for(helper).read_rows) / self.rows

    def partial_fraction(self, helper: int) -> float:
        """Fraction of a chunk a *partial result* from this helper occupies.

        With PPR, a helper ships its locally-combined contribution: one
        buffer per lost row it touches.
        """
        return len(self.term_for(helper).output_rows) / self.rows

    def raw_fraction(self, helper: int) -> float:
        """Fraction of a chunk shipped when sending *raw* rows (traditional).

        Traditional repair sends exactly what it read.
        """
        return self.read_fraction(helper)

    def total_read_fraction(self) -> float:
        """Total disk reads across helpers, in units of one chunk."""
        return sum(self.read_fraction(term.helper) for term in self.terms)

    def total_raw_fraction(self) -> float:
        """Total bytes into a central repair site, in units of one chunk."""
        return sum(self.raw_fraction(term.helper) for term in self.terms)

    # ------------------------------------------------------------------
    # Execution (correctness path)
    # ------------------------------------------------------------------
    def _split_rows(self, chunk: np.ndarray) -> np.ndarray:
        if chunk.ndim != 1:
            raise CodingError("chunk buffers must be 1-D")
        if chunk.size % self.rows:
            raise CodingError(
                f"chunk of {chunk.size} bytes not divisible into "
                f"{self.rows} rows"
            )
        return chunk.reshape(self.rows, -1)

    def partial_result(
        self, helper: int, chunk: np.ndarray
    ) -> "Dict[int, np.ndarray]":
        """Compute one helper's partial result: ``lost_row -> buffer``.

        This is the local computation PPR schedules on the helper server
        (scalar multiplications only, §4.1 observation 2).
        """
        rows = self._split_rows(np.asarray(chunk, dtype=np.uint8))
        out: Dict[int, np.ndarray] = {}
        for lost_row, helper_row, coeff in self.term_for(helper).entries:
            buf = out.get(lost_row)
            if buf is None:
                buf = np.zeros(rows.shape[1], dtype=np.uint8)
                out[lost_row] = buf
            addmul(buf, coeff, rows[helper_row])
        return out

    @staticmethod
    def merge_partials(
        left: Mapping[int, np.ndarray], right: Mapping[int, np.ndarray]
    ) -> "Dict[int, np.ndarray]":
        """XOR-merge two partial results (the aggregation-server op)."""
        merged: Dict[int, np.ndarray] = {
            row: buf.copy() for row, buf in left.items()
        }
        for row, buf in right.items():
            if row in merged:
                np.bitwise_xor(merged[row], buf, out=merged[row])
            else:
                merged[row] = buf.copy()
        return merged

    def assemble(self, partials: Mapping[int, np.ndarray]) -> np.ndarray:
        """Turn a fully-merged partial map into the reconstructed chunk."""
        if self.rows == 0 or not partials:
            raise CodingError("cannot assemble from empty partials")
        row_len = next(iter(partials.values())).size
        chunk = np.zeros(self.rows * row_len, dtype=np.uint8)
        view = chunk.reshape(self.rows, row_len)
        for row, buf in partials.items():
            if not 0 <= row < self.rows:
                raise CodingError(f"partial row {row} out of range")
            view[row] = buf
        return chunk

    def execute_rows(
        self, raw: "Mapping[int, Mapping[int, np.ndarray]]"
    ) -> np.ndarray:
        """Execute from per-row raw transfers: ``helper -> {row -> buffer}``.

        Traditional repair over sub-chunk codes ships only the helper rows
        the recipe reads; this entry point consumes exactly that.
        """
        merged: Dict[int, np.ndarray] = {}
        for term in self.terms:
            rows = raw.get(term.helper)
            if rows is None:
                raise CodingError(f"missing raw rows for helper {term.helper}")
            for lost_row, helper_row, coeff in term.entries:
                if helper_row not in rows:
                    raise CodingError(
                        f"helper {term.helper} raw transfer missing row "
                        f"{helper_row}"
                    )
                buf = merged.get(lost_row)
                if buf is None:
                    buf = np.zeros(rows[helper_row].size, dtype=np.uint8)
                    merged[lost_row] = buf
                addmul(buf, coeff, rows[helper_row])
        return self.assemble(merged)

    def read_rows_payload(
        self, helper: int, chunk: np.ndarray
    ) -> "Dict[int, np.ndarray]":
        """Extract the helper rows a raw transfer ships: ``row -> buffer``."""
        rows = self._split_rows(np.asarray(chunk, dtype=np.uint8))
        return {
            helper_row: rows[helper_row].copy()
            for helper_row in self.term_for(helper).read_rows
        }

    def execute(self, chunks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Centrally execute the recipe; reference implementation.

        ``chunks`` maps helper index -> full chunk buffer.  Used both by
        traditional repair and by tests as ground truth for PPR execution.
        """
        merged: Dict[int, np.ndarray] = {}
        for term in self.terms:
            if term.helper not in chunks:
                raise CodingError(f"missing helper chunk {term.helper}")
            partial = self.partial_result(term.helper, chunks[term.helper])
            merged = self.merge_partials(merged, partial)
        return self.assemble(merged)


def whole_chunk_recipe(
    lost: int, coefficients: Mapping[int, int]
) -> RepairRecipe:
    """Build a rows==1 recipe from ``helper -> coefficient`` (RS/LRC case)."""
    terms = tuple(
        RecipeTerm(helper=h, entries=((0, 0, int(c)),))
        for h, c in sorted(coefficients.items())
        if int(c) != 0
    )
    if not terms:
        raise PlanError("whole-chunk recipe has no nonzero coefficients")
    return RepairRecipe(lost=lost, rows=1, terms=terms)
