"""Erasure codes: Reed-Solomon, Cauchy-RS, Azure LRC, Rotated RS, replication.

Every code exposes the same interface (:class:`repro.codes.base.ErasureCode`):
encode a stripe, decode data from any recoverable subset, reconstruct one
chunk, and — the piece PPR builds on — produce a :class:`RepairRecipe`: the
linear equation ``lost = Σ_h M_h · chunk_h`` over the surviving chunks that
the repair layer can execute centrally (traditional), serially (staggered)
or as a distributed reduction tree (PPR).
"""

from repro.codes.base import ErasureCode
from repro.codes.recipe import RecipeTerm, RepairRecipe
from repro.codes.rs import ReedSolomonCode
from repro.codes.cauchy import CauchyReedSolomonCode
from repro.codes.lrc import LocalReconstructionCode
from repro.codes.rotated import RotatedReedSolomonCode
from repro.codes.replication import ReplicationCode
from repro.codes.evenodd import EvenOddCode
from repro.codes.rdp import RowDiagonalParityCode
from repro.codes.registry import available_codes, make_code, register_code

__all__ = [
    "ErasureCode",
    "RecipeTerm",
    "RepairRecipe",
    "ReedSolomonCode",
    "CauchyReedSolomonCode",
    "LocalReconstructionCode",
    "RotatedReedSolomonCode",
    "ReplicationCode",
    "EvenOddCode",
    "RowDiagonalParityCode",
    "available_codes",
    "make_code",
    "register_code",
]
