"""Name-based construction of erasure codes, e.g. from CLI/config strings.

Understood formats (case-insensitive):

* ``"rs(6,3)"`` / ``"rs-6-3"`` — Reed-Solomon
* ``"crs(6,3)"``              — Cauchy Reed-Solomon
* ``"lrc(12,2,2)"``           — Local Reconstruction Code
* ``"rotrs(12,4)"`` / ``"rotrs(12,4,4)"`` — Rotated RS (optional r)
* ``"rep(3)"``                — replication
* ``"evenodd(5)"``            — EVENODD array code (p prime)
* ``"rdp(5)"``                — Row-Diagonal Parity (p prime)
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.codes.base import ErasureCode
from repro.codes.cauchy import CauchyReedSolomonCode
from repro.codes.lrc import LocalReconstructionCode
from repro.codes.evenodd import EvenOddCode
from repro.codes.rdp import RowDiagonalParityCode
from repro.codes.replication import ReplicationCode
from repro.codes.rotated import RotatedReedSolomonCode
from repro.codes.rs import ReedSolomonCode

_FACTORIES: "Dict[str, Callable[..., ErasureCode]]" = {}


def register_code(name: str, factory: "Callable[..., ErasureCode]") -> None:
    """Register a code family under a (lower-case) name."""
    _FACTORIES[name.lower()] = factory


def available_codes() -> "List[str]":
    """Registered family names."""
    return sorted(_FACTORIES)


_SPEC_RE = re.compile(
    r"^\s*(?P<family>[a-zA-Z_]+)\s*[\(\-]\s*(?P<args>[\d,\s\-]*)\s*\)?\s*$"
)


def make_code(spec: str) -> ErasureCode:
    """Build a code from a spec string like ``"rs(6,3)"``."""
    match = _SPEC_RE.match(spec)
    if not match:
        raise ConfigurationError(f"unparseable code spec: {spec!r}")
    family = match.group("family").lower()
    factory = _FACTORIES.get(family)
    if factory is None:
        raise ConfigurationError(
            f"unknown code family {family!r}; known: {available_codes()}"
        )
    args_text = match.group("args").replace("-", ",")
    args = [int(tok) for tok in args_text.split(",") if tok.strip()]
    return factory(*args)


register_code("rs", ReedSolomonCode)
register_code("evenodd", EvenOddCode)
register_code("rdp", RowDiagonalParityCode)
register_code("crs", CauchyReedSolomonCode)
register_code("lrc", LocalReconstructionCode)
register_code("rotrs", RotatedReedSolomonCode)
register_code("rep", ReplicationCode)
