"""(k, m) Reed-Solomon — the paper's baseline code.

Systematic Vandermonde construction (see :mod:`repro.linalg.builders`):
MDS, so any k of the k+m chunks recover the stripe, and repairing one chunk
always needs exactly k helpers — the ``k x C`` network funnel PPR attacks.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.codes.linear import GeneratorMatrixCode
from repro.linalg.builders import systematic_vandermonde_generator


class ReedSolomonCode(GeneratorMatrixCode):
    """Systematic Reed-Solomon over GF(2^8).

    >>> code = ReedSolomonCode(4, 2)
    >>> code.name
    'RS(4,2)'
    >>> code.storage_overhead
    1.5
    """

    def __init__(self, k: int, m: int):
        if m < 1:
            raise ConfigurationError(f"RS needs m >= 1 parity, got {m}")
        self._m = m
        super().__init__(systematic_vandermonde_generator(k, m))

    @property
    def name(self) -> str:
        return f"RS({self.k},{self._m})"

    @property
    def m(self) -> int:
        """Number of parity chunks."""
        return self._m
