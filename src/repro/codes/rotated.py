"""Rotated Reed-Solomon (Khan et al., FAST'12).

Each chunk is split into ``r`` sub-chunks (rows).  Parity ``j``'s row ``b``
combines *rotated* data rows::

    p[j][b] =   sum_{i <  j*k/m}  g[j][i] * d[i][(b+1) mod r]
              ^ sum_{i >= j*k/m}  g[j][i] * d[i][b]

i.e. for parity ``j`` the first ``j*k/m`` data columns are shifted down one
row.  The rotation lets a single-column repair mix rows so that it reads
roughly ``r/2 * (k + ceil(k/m))`` sub-symbols instead of ``r * k`` — the
paper's Fig. 9 overlays PPR on exactly this code.

Repair planning reproduces Khan et al.'s *recovery-equation enumeration*:
for each lost sub-symbol there are up to ``m`` usable parity equations;
we search the ``m^r`` joint choices exactly (falling back to greedy when
that blows up) for the one minimizing distinct sub-symbols read.

Multi-failure decode solves the sub-symbol linear system generically, so
any information-theoretically recoverable pattern decodes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, UnrecoverableError
from repro.codes.arraycode import SubGeneratorCode
from repro.codes.recipe import RecipeTerm, RepairRecipe
from repro.linalg.builders import cauchy_matrix
from repro.linalg.matrix import GFMatrix
from repro.galois.field import gf256

#: Above this many joint equation choices, fall back to greedy search.
_EXACT_SEARCH_LIMIT = 4096

#: A sub-symbol: (chunk index, row) with chunks 0..k-1 data, k..k+m-1 parity.
SubSymbol = Tuple[int, int]


class RotatedReedSolomonCode(SubGeneratorCode):
    """Rotated RS(k, m) with r sub-chunk rows per chunk.

    >>> code = RotatedReedSolomonCode(6, 3, r=4)
    >>> code.name
    'RotRS(6,3,r=4)'
    """

    def __init__(self, k: int, m: int, r: int = 4):
        if m < 1:
            raise ConfigurationError(f"Rotated RS needs m >= 1, got {m}")
        if r < 1:
            raise ConfigurationError(f"Rotated RS needs r >= 1, got {r}")
        if k % m:
            raise ConfigurationError(
                f"Rotated RS requires m | k (got k={k}, m={m})"
            )
        self._k = k
        self._m = m
        self._r = r
        self._coeffs = cauchy_matrix(m, k).data  # g[j][i]
        super().__init__(k, k + m, r, self._build_sub_generator(k, m, r))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"RotRS({self._k},{self._m},r={self._r})"

    @property
    def m(self) -> int:
        return self._m

    @property
    def r(self) -> int:
        """Sub-chunk rows per chunk."""
        return self._r

    @property
    def fault_tolerance(self) -> int:
        """Guaranteed tolerance.

        Khan et al. prove MDS behaviour only for m in {2, 3} under parameter
        restrictions; we guarantee single-failure recovery and let
        :meth:`is_recoverable` answer exactly for any pattern (the tests
        verify all double failures decode for the configurations used in
        the paper's evaluation).
        """
        return 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _rotated_row(self, j: int, i: int, b: int) -> int:
        """Data row of column ``i`` used by parity ``j``'s row ``b``."""
        if i < j * self._k // self._m:
            return (b + 1) % self._r
        return b

    def _build_sub_generator(self, k: int, m: int, r: int) -> GFMatrix:
        """The ``(n*r, k*r)`` map from data sub-symbols to all sub-symbols."""
        data = np.zeros(((k + m) * r, k * r), dtype=np.uint8)
        data[: k * r, : k * r] = np.eye(k * r, dtype=np.uint8)
        for j in range(m):
            for b in range(r):
                row = (k + j) * r + b
                for i in range(k):
                    col = i * r + self._rotated_row(j, i, b)
                    data[row, col] = self._coeffs[j, i]
        return GFMatrix(data)

    # ------------------------------------------------------------------
    # Repair planning (Khan et al. recovery-equation search)
    # ------------------------------------------------------------------
    def _equation_symbols(self, j: int, b_parity: int) -> List[SubSymbol]:
        """All sub-symbols appearing in parity ``j``'s row ``b_parity``."""
        symbols: List[SubSymbol] = [(self._k + j, b_parity)]
        for i in range(self._k):
            symbols.append((i, self._rotated_row(j, i, b_parity)))
        return symbols

    def _candidate_equations(self, f: int, b: int) -> List[Tuple[int, int]]:
        """Parity equations ``(j, parity_row)`` containing data symbol (f, b)."""
        candidates: List[Tuple[int, int]] = []
        for j in range(self._m):
            if f < j * self._k // self._m:
                candidates.append((j, (b - 1) % self._r))
            else:
                candidates.append((j, b))
        return candidates

    def _plan_data_column_repair(
        self, f: int, alive: Set[int]
    ) -> "Dict[int, Tuple[int, int]]":
        """Choose one parity equation per lost row of data column ``f``.

        Returns ``lost_row -> (j, parity_row)`` minimizing distinct symbols
        read.  Requires the equation's parity chunk and all other data
        columns it touches to be alive.
        """
        per_row: List[List[Tuple[int, int]]] = []
        for b in range(self._r):
            usable = [
                (j, pb)
                for j, pb in self._candidate_equations(f, b)
                if (self._k + j) in alive
                and all(
                    i in alive
                    for i in range(self._k)
                    if i != f
                )
            ]
            if not usable:
                raise UnrecoverableError(
                    f"{self.name}: no usable recovery equation for "
                    f"sub-symbol ({f},{b}) with survivors {sorted(alive)}"
                )
            per_row.append(usable)

        def cost(choice: Sequence[Tuple[int, int]]) -> int:
            read: Set[SubSymbol] = set()
            for b, (j, pb) in enumerate(choice):
                for sym in self._equation_symbols(j, pb):
                    if sym[0] != f:
                        read.add(sym)
            return len(read)

        total = 1
        for options in per_row:
            total *= len(options)
        if total <= _EXACT_SEARCH_LIMIT:
            best = min(itertools.product(*per_row), key=cost)
        else:
            # Greedy: fix rows one at a time, choosing the equation adding
            # the fewest new symbols to the running read set.
            read: Set[SubSymbol] = set()
            best_list: List[Tuple[int, int]] = []
            for b, options in enumerate(per_row):
                def added(option: Tuple[int, int]) -> int:
                    j, pb = option
                    return sum(
                        1
                        for sym in self._equation_symbols(j, pb)
                        if sym[0] != f and sym not in read
                    )
                choice = min(options, key=added)
                best_list.append(choice)
                j, pb = choice
                read.update(
                    sym for sym in self._equation_symbols(j, pb) if sym[0] != f
                )
            best = tuple(best_list)
        return {b: best[b] for b in range(self._r)}

    def repair_recipe(self, lost: int, alive: Iterable[int]) -> RepairRecipe:
        alive_list = self._validated_alive(alive, lost=lost)
        alive_set = set(alive_list)
        if lost < self._k:
            return self._data_repair_recipe(lost, alive_set)
        return self._parity_repair_recipe(lost, alive_set)

    def _data_repair_recipe(self, f: int, alive: Set[int]) -> RepairRecipe:
        plan = self._plan_data_column_repair(f, alive)
        entries_by_helper: Dict[int, List[Tuple[int, int, int]]] = {}
        for b, (j, pb) in plan.items():
            g_jf = int(self._coeffs[j, f])
            inv = gf256.inv(g_jf)
            # d[f][b] = inv * p[j][pb] ^ sum_{i != f} inv*g[j][i] * d[i][row_i]
            entries_by_helper.setdefault(self._k + j, []).append((b, pb, inv))
            for i in range(self._k):
                if i == f:
                    continue
                coeff = gf256.mul(inv, int(self._coeffs[j, i]))
                if coeff == 0:
                    continue
                row_i = self._rotated_row(j, i, pb)
                entries_by_helper.setdefault(i, []).append((b, row_i, coeff))
        return self._build_recipe(f, entries_by_helper)

    def _parity_repair_recipe(self, lost: int, alive: Set[int]) -> RepairRecipe:
        j = lost - self._k
        missing_data = [i for i in range(self._k) if i not in alive]
        if missing_data:
            raise UnrecoverableError(
                f"{self.name}: parity {lost} recompute needs all data "
                f"columns; missing {missing_data}"
            )
        entries_by_helper: Dict[int, List[Tuple[int, int, int]]] = {}
        for b in range(self._r):
            for i in range(self._k):
                coeff = int(self._coeffs[j, i])
                if coeff == 0:
                    continue
                row_i = self._rotated_row(j, i, b)
                entries_by_helper.setdefault(i, []).append((b, row_i, coeff))
        return self._build_recipe(lost, entries_by_helper)

    def _build_recipe(
        self,
        lost: int,
        entries_by_helper: Mapping[int, Sequence[Tuple[int, int, int]]],
    ) -> RepairRecipe:
        terms = []
        for helper in sorted(entries_by_helper):
            merged: Dict[Tuple[int, int], int] = {}
            for lost_row, helper_row, coeff in entries_by_helper[helper]:
                key = (lost_row, helper_row)
                merged[key] = merged.get(key, 0) ^ coeff
            entries = tuple(
                (lr, hr, c) for (lr, hr), c in sorted(merged.items()) if c
            )
            if entries:
                terms.append(RecipeTerm(helper=helper, entries=entries))
        return RepairRecipe(lost=lost, rows=self._r, terms=tuple(terms))

    # ------------------------------------------------------------------
    # Analytics
    # ------------------------------------------------------------------
    def single_repair_read_symbols(self, lost: int) -> int:
        """Distinct sub-symbols read to repair ``lost`` with all others alive.

        Khan et al. report ~``r/2 * (k + ceil(k/m))`` for even ``r``; the
        benchmarks compare this measurement against that formula.
        """
        alive = set(range(self.n)) - {lost}
        recipe = self.repair_recipe(lost, alive)
        return sum(len(term.read_rows) for term in recipe.terms)
