"""EVENODD — the classic XOR-only double-parity array code.

Blaum, Brady, Bruck, Menon (IEEE ToC 1995); cited by the paper (§8,
[51]-family) as one of the optimized-recovery array codes PPR is
compatible with.  EVENODD(p), p prime, stores a ``(p-1) x p`` array of
data sub-symbols (p data chunks of p-1 rows) plus two parity chunks:

* **P** (chunk p): row parity — ``P[l] = XOR_t d[l][t]``.
* **Q** (chunk p+1): diagonal parity with the *EVENODD adjuster*
  ``S = XOR_{t=1..p-1} d[p-1-t][t]`` (the diagonal through the imaginary
  zero row):  ``Q[l] = S XOR ( XOR_t d[(l-t) mod p][t] )`` where the
  imaginary row ``d[p-1][t] = 0``.

All coefficients are in {0, 1}, so encode/decode/repair reduce to XOR —
and PPR overlays on it untouched, since XOR aggregation is exactly the
partial operation PPR distributes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.codes.arraycode import SubGeneratorCode
from repro.linalg.matrix import GFMatrix


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    if value % 2 == 0:
        return value == 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def _evenodd_generator(p: int) -> GFMatrix:
    rows_per_chunk = p - 1
    k, n = p, p + 2
    gen = np.zeros((n * rows_per_chunk, k * rows_per_chunk), dtype=np.uint8)

    def data_col(i: int, row: int) -> int:
        return i * rows_per_chunk + row

    gen[: k * rows_per_chunk, : k * rows_per_chunk] = np.eye(
        k * rows_per_chunk, dtype=np.uint8
    )
    # P: row parity.
    for l in range(rows_per_chunk):
        out = (p) * rows_per_chunk + l
        for t in range(p):
            gen[out, data_col(t, l)] ^= 1
    # Q: diagonal parity + adjuster S.
    adjuster_cols = [
        data_col(t, p - 1 - t) for t in range(1, p)
    ]  # d[p-1-t][t], rows 0..p-2 — all real
    for l in range(rows_per_chunk):
        out = (p + 1) * rows_per_chunk + l
        for col in adjuster_cols:
            gen[out, col] ^= 1
        for t in range(p):
            row = (l - t) % p
            if row == p - 1:
                continue  # imaginary zero row
            gen[out, data_col(t, row)] ^= 1
    return GFMatrix(gen)


class EvenOddCode(SubGeneratorCode):
    """EVENODD(p): p data chunks + row parity + diagonal parity.

    MDS for two erasures: any 2 of the p+2 chunks may be lost.

    >>> EvenOddCode(5).name
    'EVENODD(5)'
    """

    def __init__(self, p: int):
        if not _is_prime(p):
            raise ConfigurationError(f"EVENODD requires prime p, got {p}")
        self._p = p
        super().__init__(k=p, n=p + 2, rows=p - 1,
                         sub_generator=_evenodd_generator(p))

    @property
    def name(self) -> str:
        return f"EVENODD({self._p})"

    @property
    def p(self) -> int:
        """The prime parameter (also the number of data chunks)."""
        return self._p

    @property
    def fault_tolerance(self) -> int:
        return 2

    def helper_preference(self, lost: int, alive: Sequence[int]) -> List[int]:
        """Prefer data chunks + row parity: pure-XOR single-failure repair.

        The diagonal parity is offered last so the greedy span solver only
        pulls it in when the cheap row equations cannot cover the loss.
        """
        ordered = sorted(alive)
        row_parity = self._p
        diag_parity = self._p + 1
        front = [i for i in ordered if i not in (row_parity, diag_parity)]
        if row_parity in ordered and lost != row_parity:
            front.append(row_parity)
        back = [i for i in ordered if i not in front]
        return front + back
