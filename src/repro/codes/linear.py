"""Base class for codes defined by an ``n x k`` generator matrix.

Covers RS, Cauchy-RS and LRC.  Decoding selects an invertible ``k x k``
row subset; single-chunk repair expresses the lost chunk's generator row in
the span of surviving rows (see :mod:`repro.linalg.span`), which directly
yields the decoding coefficients PPR distributes.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

import numpy as np

from repro.errors import CodingError, SingularMatrixError, UnrecoverableError
from repro.codes.base import ErasureCode
from repro.codes.recipe import RepairRecipe, whole_chunk_recipe
from repro.linalg.matrix import GFMatrix
from repro.linalg.span import express_in_span


class GeneratorMatrixCode(ErasureCode):
    """An erasure code ``chunks = G @ data`` with ``G`` of shape (n, k)."""

    rows = 1

    def __init__(self, generator: GFMatrix):
        if generator.rows < generator.cols:
            raise CodingError("generator must have at least k rows")
        self._generator = generator

    @property
    def generator(self) -> GFMatrix:
        """The ``(n, k)`` generator matrix (top k rows usually identity)."""
        return self._generator

    @property
    def k(self) -> int:
        return self._generator.cols

    @property
    def n(self) -> int:
        return self._generator.rows

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validated_data(data)
        return self._generator.mul_buffer(data)

    def decode_data(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        indices = self._validated_alive(available.keys(), lost=None)
        if len(indices) < self.k:
            raise UnrecoverableError(
                f"{self.name}: {len(indices)} survivors < k={self.k}"
            )
        chosen = self._independent_subset(indices)
        if chosen is None:
            raise UnrecoverableError(
                f"{self.name}: surviving rows do not span the data space"
            )
        submatrix = self._generator.take_rows(chosen)
        stack = np.stack([np.asarray(available[i], dtype=np.uint8) for i in chosen])
        try:
            return submatrix.solve(stack)
        except SingularMatrixError as exc:  # defensive; subset was checked
            raise UnrecoverableError(str(exc)) from exc

    def _independent_subset(
        self, indices: Sequence[int]
    ) -> "List[int] | None":
        """Greedily pick k independent generator rows from ``indices``."""
        chosen: List[int] = []
        for index in indices:
            candidate = chosen + [index]
            if self._generator.take_rows(candidate).rank() == len(candidate):
                chosen.append(index)
            if len(chosen) == self.k:
                return chosen
        return None

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def helper_preference(self, lost: int, alive: Sequence[int]) -> List[int]:
        """Order in which survivors are offered to the repair solver.

        The base class has no locality structure, so the order is
        ascending; LRC overrides this to put the lost chunk's local group
        first.
        """
        return list(alive)

    def repair_recipe(self, lost: int, alive: Iterable[int]) -> RepairRecipe:
        alive_list = self._validated_alive(alive, lost=lost)
        ordered = self.helper_preference(lost, alive_list)
        rows = [self._generator.row(i) for i in ordered]
        combo = express_in_span(rows, ordered, self._generator.row(lost))
        if combo is None:
            raise UnrecoverableError(
                f"{self.name}: chunk {lost} is unrecoverable from {alive_list}"
            )
        return whole_chunk_recipe(lost, combo)

    def is_recoverable(self, alive: Iterable[int]) -> bool:
        indices = self._validated_alive(alive, lost=None)
        if len(indices) < self.k:
            return False
        return self._generator.take_rows(indices).rank() == self.k
