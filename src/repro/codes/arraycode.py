"""Base class for array codes defined at sub-symbol granularity.

An *array code* views each chunk as ``rows`` sub-symbols and defines the
code by a ``(n*rows) x (k*rows)`` generator over GF(2^8) mapping data
sub-symbols to all sub-symbols.  Rotated RS, EVENODD and RDP all fit this
shape; XOR-only codes (EVENODD, RDP) simply use {0,1} coefficients.

Generic machinery provided here:

* encode / decode (full-rank sub-row subset + solve),
* recoverability checks,
* repair recipes via span-solving each lost sub-row against surviving
  sub-rows, with a helper-preference hook so subclasses can steer the
  solver toward cheap equations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodingError, UnrecoverableError
from repro.codes.base import ErasureCode
from repro.codes.recipe import RecipeTerm, RepairRecipe
from repro.linalg.matrix import GFMatrix
from repro.linalg.span import express_in_span


class SubGeneratorCode(ErasureCode):
    """An erasure code defined by a sub-symbol generator matrix."""

    def __init__(self, k: int, n: int, rows: int, sub_generator: GFMatrix):
        if sub_generator.shape != (n * rows, k * rows):
            raise CodingError(
                f"sub-generator must be ({n * rows}, {k * rows}), "
                f"got {sub_generator.shape}"
            )
        self._k = k
        self._n = n
        self.rows = rows
        self._sub_generator = sub_generator

    @property
    def k(self) -> int:
        return self._k

    @property
    def n(self) -> int:
        return self._n

    @property
    def sub_generator(self) -> GFMatrix:
        """The ``(n*rows, k*rows)`` sub-symbol generator."""
        return self._sub_generator

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validated_data(data)
        chunk_len = data.shape[1]
        row_len = chunk_len // self.rows
        subs = data.reshape(self._k * self.rows, row_len)
        encoded = self._sub_generator.mul_buffer(subs)
        return encoded.reshape(self._n, chunk_len)

    def decode_data(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        indices = self._validated_alive(available.keys(), lost=None)
        if not indices:
            raise UnrecoverableError(f"{self.name}: no survivors")
        first = np.asarray(available[indices[0]], dtype=np.uint8)
        if first.size % self.rows:
            raise CodingError(
                f"{self.name}: chunk length {first.size} not divisible "
                f"by {self.rows} rows"
            )
        row_len = first.size // self.rows
        sub_rows: "List[int]" = []
        buffers: "List[np.ndarray]" = []
        for index in indices:
            chunk = np.asarray(available[index], dtype=np.uint8)
            view = chunk.reshape(self.rows, row_len)
            for b in range(self.rows):
                sub_rows.append(index * self.rows + b)
                buffers.append(view[b])
        subset = self._independent_sub_rows(sub_rows)
        if subset is None:
            raise UnrecoverableError(
                f"{self.name}: survivors do not span the data sub-symbols"
            )
        chosen_rows = [sub_rows[i] for i in subset]
        stack = np.stack([buffers[i] for i in subset])
        solved = self._sub_generator.take_rows(chosen_rows).solve(stack)
        return solved.reshape(self._k, self.rows * row_len)

    def _independent_sub_rows(
        self, sub_rows: Sequence[int]
    ) -> "Optional[List[int]]":
        need = self._k * self.rows
        if len(sub_rows) < need:
            return None
        chosen: "List[int]" = []
        chosen_rows: "List[int]" = []
        for pos, row in enumerate(sub_rows):
            candidate = chosen_rows + [row]
            if self._sub_generator.take_rows(candidate).rank() == len(
                candidate
            ):
                chosen.append(pos)
                chosen_rows.append(row)
            if len(chosen) == need:
                return chosen
        return None

    def is_recoverable(self, alive: Iterable[int]) -> bool:
        indices = self._validated_alive(alive, lost=None)
        sub_rows = [i * self.rows + b for i in indices for b in range(self.rows)]
        if len(sub_rows) < self._k * self.rows:
            return False
        return (
            self._sub_generator.take_rows(sub_rows).rank()
            == self._k * self.rows
        )

    # ------------------------------------------------------------------
    # Generic repair via span solving
    # ------------------------------------------------------------------
    def helper_preference(self, lost: int, alive: Sequence[int]) -> List[int]:
        """Order in which surviving chunks are offered to the solver.

        Subclasses with structure (row parity first, diagonal second, ...)
        override this; earlier chunks yield cheaper equations because the
        span solver is greedy-prefix.
        """
        return list(alive)

    def repair_recipe(self, lost: int, alive: Iterable[int]) -> RepairRecipe:
        alive_list = self._validated_alive(alive, lost=lost)
        ordered = self.helper_preference(lost, alive_list)
        sub_rows: "List[int]" = [
            i * self.rows + b for i in ordered for b in range(self.rows)
        ]
        rows_data = [self._sub_generator.row(r) for r in sub_rows]
        entries_by_helper: "Dict[int, List[Tuple[int, int, int]]]" = {}
        for b in range(self.rows):
            target = self._sub_generator.row(lost * self.rows + b)
            combo = express_in_span(rows_data, sub_rows, target)
            if combo is None:
                raise UnrecoverableError(
                    f"{self.name}: sub-row ({lost},{b}) unrecoverable from "
                    f"{alive_list}"
                )
            for sub_row, coeff in combo.items():
                helper, helper_row = divmod(sub_row, self.rows)
                entries_by_helper.setdefault(helper, []).append(
                    (b, helper_row, coeff)
                )
        terms = []
        for helper in sorted(entries_by_helper):
            merged: "Dict[Tuple[int, int], int]" = {}
            for lost_row, helper_row, coeff in entries_by_helper[helper]:
                key = (lost_row, helper_row)
                merged[key] = merged.get(key, 0) ^ coeff
            entries = tuple(
                (lr, hr, c) for (lr, hr), c in sorted(merged.items()) if c
            )
            if entries:
                terms.append(RecipeTerm(helper=helper, entries=entries))
        return RepairRecipe(lost=lost, rows=self.rows, terms=tuple(terms))
