"""RDP — Row-Diagonal Parity (Corbett et al., FAST'04).

Cited by the paper (§8 [47][51] family: optimized recovery for
double-parity array codes).  RDP(p), p prime, is a ``(p-1) x (p+1)``
array: ``p-1`` data chunks, one row-parity chunk, one diagonal-parity
chunk.  The crucial difference from EVENODD: diagonals include the *row
parity* column, which removes the adjuster term:

* **P** (chunk p-1): ``P[l] = XOR_{t<p-1} d[l][t]``
* **Q** (chunk p):   diagonal ``i`` covers cells ``(r, c)`` with
  ``(r + c) mod p == i`` over data *and* P columns;
  ``Q[i] = XOR {cells on diagonal i}`` for ``i = 0..p-2``
  (diagonal ``p-1`` is the "missing" one, never stored).

XOR-only like EVENODD.  Single-data-chunk repair implements the *hybrid
recovery* of Xiang, Xu, Lui, Chang (SIGMETRICS'10 — the paper's [51]):
recover some lost rows from row equations and the rest from diagonal
equations, chosen by exact search to maximize symbol overlap, cutting
reads by ~25% versus all-row recovery.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.codes.arraycode import SubGeneratorCode
from repro.codes.evenodd import _is_prime
from repro.linalg.matrix import GFMatrix


def _rdp_generator(p: int) -> GFMatrix:
    rows_per_chunk = p - 1
    k = p - 1  # data chunks
    n = p + 1
    gen = np.zeros((n * rows_per_chunk, k * rows_per_chunk), dtype=np.uint8)

    def data_col(i: int, row: int) -> int:
        return i * rows_per_chunk + row

    gen[: k * rows_per_chunk, : k * rows_per_chunk] = np.eye(
        k * rows_per_chunk, dtype=np.uint8
    )
    # P (chunk index p-1): row parity over the p-1 data columns.
    p_base = (p - 1) * rows_per_chunk
    for l in range(rows_per_chunk):
        for t in range(k):
            gen[p_base + l, data_col(t, l)] ^= 1
    # Q (chunk index p): diagonal parity over data + P columns.
    # Column c of the conceptual array: c in 0..p-1 where c<p-1 are data
    # and c == p-1 is P.  Diagonal i covers (r, c) with (r+c) mod p == i.
    q_base = p * rows_per_chunk
    for i in range(rows_per_chunk):  # stored diagonals 0..p-2
        for c in range(p):
            r = (i - c) % p
            if r >= rows_per_chunk:
                continue  # off the array (the imaginary row)
            if c < p - 1:
                gen[q_base + i, data_col(c, r)] ^= 1
            else:
                # P cell (r, P): substitute P's defining XOR of data.
                for t in range(k):
                    gen[q_base + i, data_col(t, r)] ^= 1
    return GFMatrix(gen)


class RowDiagonalParityCode(SubGeneratorCode):
    """RDP(p): p-1 data chunks + row parity + diagonal parity.

    MDS for two erasures.

    >>> RowDiagonalParityCode(5).name
    'RDP(5)'
    """

    def __init__(self, p: int):
        if not _is_prime(p) or p < 3:
            raise ConfigurationError(f"RDP requires prime p >= 3, got {p}")
        self._p = p
        super().__init__(k=p - 1, n=p + 1, rows=p - 1,
                         sub_generator=_rdp_generator(p))

    @property
    def name(self) -> str:
        return f"RDP({self._p})"

    @property
    def p(self) -> int:
        """The prime parameter."""
        return self._p

    @property
    def fault_tolerance(self) -> int:
        return 2

    def helper_preference(self, lost: int, alive: Sequence[int]) -> List[int]:
        """Offer data + row parity first; diagonal parity as a last resort."""
        ordered = sorted(alive)
        diag = self._p
        front = [i for i in ordered if i != diag]
        return front + [i for i in ordered if i == diag]

    # ------------------------------------------------------------------
    # Hybrid single-failure recovery (Xiang et al., SIGMETRICS'10)
    # ------------------------------------------------------------------
    def _row_equation(self, f: int, r: int) -> "List[Tuple[int, int]]":
        """Symbols (chunk, row) in the row equation for cell (r, f)."""
        symbols: "List[Tuple[int, int]]" = [(self._p - 1, r)]  # P[r]
        for t in range(self.k):
            if t != f:
                symbols.append((t, r))
        return symbols

    def _diag_equation(self, f: int, r: int) -> "List[Tuple[int, int]]":
        """Symbols in the diagonal equation for cell (r, f).

        Diagonal ``i = (r + f) mod p`` covers data columns and the P
        column; Q stores it at row i (only diagonals 0..p-2 exist).
        """
        p = self._p
        i = (r + f) % p
        if i == p - 1:
            return []  # the missing diagonal: no stored Q row
        symbols: "List[Tuple[int, int]]" = [(p, i)]  # Q[i]
        for c in range(p):  # conceptual columns: data 0..p-2, P at p-1
            if c == f:
                continue
            row = (i - c) % p
            if row >= p - 1:
                continue  # imaginary row
            chunk = c if c < p - 1 else p - 1
            symbols.append((chunk, row))
        return symbols

    def repair_recipe(self, lost: int, alive: Iterable[int]) -> "RepairRecipe":
        alive_list = self._validated_alive(alive, lost=lost)
        alive_set = set(alive_list)
        full_helpers = set(range(self.n)) - {lost}
        if lost >= self.k or alive_set != full_helpers:
            # Parity chunks and degraded survivor sets: generic solver.
            return super().repair_recipe(lost, alive_list)

        # Enumerate row-vs-diagonal per lost cell, minimizing distinct
        # symbols read (2^(p-1) choices; p <= 13 keeps this instant).
        per_row: "List[List[List[Tuple[int, int]]]]" = []
        for r in range(self.rows):
            options = [self._row_equation(lost, r)]
            diag = self._diag_equation(lost, r)
            if diag:
                options.append(diag)
            per_row.append(options)

        def cost(choice) -> int:
            read: "Set[Tuple[int, int]]" = set()
            for symbols in choice:
                read.update(symbols)
            return len(read)

        best = min(itertools.product(*per_row), key=cost)
        entries_by_helper: "Dict[int, List[Tuple[int, int, int]]]" = {}
        for r, symbols in enumerate(best):
            for chunk, row in symbols:
                entries_by_helper.setdefault(chunk, []).append((r, row, 1))
        from repro.codes.recipe import RecipeTerm, RepairRecipe

        terms = []
        for helper in sorted(entries_by_helper):
            merged: "Dict[Tuple[int, int], int]" = {}
            for lost_row, helper_row, coeff in entries_by_helper[helper]:
                key = (lost_row, helper_row)
                merged[key] = merged.get(key, 0) ^ coeff
            entry_tuple = tuple(
                (lr, hr, c) for (lr, hr), c in sorted(merged.items()) if c
            )
            if entry_tuple:
                terms.append(RecipeTerm(helper=helper, entries=entry_tuple))
        return RepairRecipe(lost=lost, rows=self.rows, terms=tuple(terms))

    def single_repair_read_symbols(self, lost: int) -> int:
        """Distinct sub-symbols read for a single-chunk repair."""
        recipe = self.repair_recipe(lost, set(range(self.n)) - {lost})
        return sum(len(term.read_rows) for term in recipe.terms)
