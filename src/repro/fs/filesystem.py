"""File namespace over stripes — the QFS directory layer (§6.1).

The Meta-Server in QFS "manages the file system's directory structure and
how RS chunks are mapped to physical storage locations".  This module adds
that top layer: files are split across one or more stripes, written with
any registered code, and read back through the client path (normal chunk
reads with automatic degraded-read fallback for missing chunks).

Bytes are real: file content round-trips through actual encode/decode, so
reads after failures exercise genuine reconstruction math while the
simulator accounts for the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.errors import StorageError
from repro.codes.base import ErasureCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


@dataclass
class FileMeta:
    """Directory entry: a file and the stripes that hold it."""

    path: str
    size: int
    code_name: str
    stripe_ids: "List[str]"
    created_at: float

    @property
    def num_stripes(self) -> int:
        return len(self.stripe_ids)


@dataclass
class FileReadResult:
    """Outcome of a simulated file read."""

    path: str
    data: bytes
    latency: float
    degraded_chunks: int
    chunk_latencies: "List[float]" = field(default_factory=list)


class FileSystem:
    """A namespace of erasure-coded files on a :class:`StorageCluster`."""

    def __init__(self, cluster: "StorageCluster"):
        self.cluster = cluster
        self._files: "Dict[str, FileMeta]" = {}

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def list_files(self) -> "List[str]":
        return sorted(self._files)

    def stat(self, path: str) -> FileMeta:
        meta = self._files.get(path)
        if meta is None:
            raise StorageError(f"no such file: {path!r}")
        return meta

    def exists(self, path: str) -> bool:
        return path in self._files

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        data: bytes,
        code: ErasureCode,
        chunk_size: "float | str" = "64MiB",
    ) -> FileMeta:
        """Store ``data`` under ``path``, split across stripes as needed.

        Each stripe carries ``k * payload_bytes`` real bytes (the scaled
        payload the cluster is configured with); the modeled chunk size
        drives all timing.
        """
        if path in self._files:
            raise StorageError(f"file exists: {path!r}")
        payload = self.cluster.config.payload_bytes
        stripe_capacity = code.k * payload
        stripe_ids: "List[str]" = []
        offset = 0
        while offset < len(data) or not stripe_ids:
            piece = data[offset : offset + stripe_capacity]
            stack = np.zeros((code.k, payload), dtype=np.uint8)
            flat = np.frombuffer(piece, dtype=np.uint8)
            stack.reshape(-1)[: flat.size] = flat
            stripe = self.cluster.write_stripe(
                code, chunk_size, data=stack
            )
            stripe_ids.append(stripe.stripe_id)
            offset += stripe_capacity
        meta = FileMeta(
            path=path,
            size=len(data),
            code_name=code.name,
            stripe_ids=stripe_ids,
            created_at=self.cluster.sim.now,
        )
        self._files[path] = meta
        return meta

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def read_file(
        self,
        path: str,
        on_done: "Optional[Callable[[FileReadResult], None]]" = None,
        strategy: str = "ppr",
    ) -> None:
        """Read a file through the client path; completes via ``on_done``.

        Every data chunk of every stripe is requested from its host; a
        missing chunk triggers a degraded read (reconstruction on the
        client's critical path, with ``strategy``).  The returned bytes
        come from real decoding of whatever chunks survive.
        """
        meta = self.stat(path)
        client = self.cluster.client()
        start = self.cluster.sim.now
        state = {
            "outstanding": 0,
            "degraded": 0,
            "latencies": [],  # type: List[float]
        }

        def finish_if_done() -> None:
            if state["outstanding"] > 0:
                return
            result = FileReadResult(
                path=path,
                data=self._decode_content(meta),
                latency=self.cluster.sim.now - start,
                degraded_chunks=state["degraded"],
                chunk_latencies=list(state["latencies"]),
            )
            if on_done is not None:
                on_done(result)

        meta_server = self.cluster.metaserver
        for stripe_id in meta.stripe_ids:
            stripe = meta_server.stripes[stripe_id]
            for index in range(stripe.code.k):
                chunk_id = stripe.chunk_ids[index]
                state["outstanding"] += 1
                if meta_server.locate_chunk(chunk_id) is None:
                    state["degraded"] += 1

                def done(latency: float) -> None:
                    state["latencies"].append(latency)
                    state["outstanding"] -= 1
                    finish_if_done()

                client.read_chunk(chunk_id, on_done=done, strategy=strategy)

    def _decode_content(self, meta: FileMeta) -> bytes:
        """Real decode of the file's bytes from surviving chunks."""
        payload = self.cluster.config.payload_bytes
        pieces: "List[bytes]" = []
        meta_server = self.cluster.metaserver
        for stripe_id in meta.stripe_ids:
            stripe = meta_server.stripes[stripe_id]
            available: "Dict[int, np.ndarray]" = {}
            for index, chunk_id in enumerate(stripe.chunk_ids):
                host = meta_server.locate_chunk(chunk_id)
                if host is None:
                    continue
                chunk = self.cluster.chunk_server(host).get_chunk(chunk_id)
                available[index] = chunk.payload
            data = stripe.code.decode_data(available)
            pieces.append(data.reshape(-1).tobytes())
        blob = b"".join(pieces)
        return blob[: meta.size]

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete_file(self, path: str) -> None:
        """Remove the file and drop its chunks from every server."""
        meta = self.stat(path)
        meta_server = self.cluster.metaserver
        for stripe_id in meta.stripe_ids:
            stripe = meta_server.stripes[stripe_id]
            for chunk_id in stripe.chunk_ids:
                host = meta_server.chunk_locations.pop(chunk_id, None)
                if host is not None and host in self.cluster.servers:
                    self.cluster.servers[host].drop_chunk(chunk_id)
                meta_server.stripe_of_chunk.pop(chunk_id, None)
            meta_server.stripes.pop(stripe_id, None)
        del self._files[path]
