"""The storage cluster: simulation + topology + servers + metadata.

:class:`StorageCluster` is the top-level object experiments build.  It
owns the event loop, the network fabric, every chunk server and client,
the meta-server, the placement policy, and ground-truth copies of every
written chunk (used to verify each reconstruction byte-for-byte).

The two testbeds of §7 are available as presets:
:meth:`StorageCluster.smallsite` (16 hosts, 1 Gbps) and
:meth:`StorageCluster.bigsite` (85 hosts, ~1.4 Gbps effective).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, StorageError
from repro.codes.base import ErasureCode
from repro.fs.chunks import Chunk, Stripe
from repro.fs.chunkserver import ChunkServer
from repro.fs.placement import make_placement
from repro.obs.collector import TelemetryCollector, TelemetryShipper
from repro.obs.timeseries import Sampler, TimeSeriesStore
from repro.sim.compute import ComputeModel
from repro.sim.events import Simulation
from repro.sim.metrics import TrafficMatrix
from repro.sim.network import Flow, FlowNetwork
from repro.sim.topology import FatTreeTopology, SingleSwitchTopology, Topology
from repro.util.rng import derive_rng, make_rng
from repro.util.units import MIB, parse_size


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for building a cluster (defaults match SMALLSITE, §7)."""

    num_servers: int = 16
    num_clients: int = 1
    link_bandwidth: "float | str" = "1Gbps"
    disk_bandwidth: "float | str" = "120MB/s"
    cache_bytes: float = 4 * 1024 * MIB
    control_latency: float = 0.0005
    heartbeat_interval: float = 5.0
    failure_detection_timeout: float = 12.0
    #: Real bytes carried per chunk for correctness checking.  Must divide
    #: by every code's ``rows``; 16 KiB works for all shipped codes.
    payload_bytes: int = 16 * 1024
    compute: ComputeModel = field(default_factory=ComputeModel)
    servers_per_rack: int = 8
    #: None -> single switch; a float -> fat-tree with that oversubscription.
    oversubscription: "Optional[float]" = None
    #: TCP-incast modeling on ingress links: goodput collapses once more
    #: than this many flows share one ingress (None disables; see
    #: repro.sim.network.Link).  The paper's testbed shows this regime in
    #: Fig 7d; the fluid default keeps it off for a conservative baseline.
    incast_threshold: "Optional[int]" = None
    incast_gamma: float = 0.4
    #: Placement strategy (:func:`repro.fs.placement.available_placements`).
    placement: str = "random"
    #: Target scatter width for ``copyset`` placement (None -> 2*(n-1)).
    scatter_width: "Optional[int]" = None
    seed: int = 2016


class StorageCluster:
    """A running QFS-like deployment on the simulator."""

    def __init__(self, config: ClusterConfig):
        if config.num_servers < 1:
            raise ConfigurationError("cluster needs at least one server")
        self.config = config
        self.sim = Simulation()
        self.network = FlowNetwork(self.sim)
        self.compute = config.compute
        self.rng = make_rng(config.seed)

        self.server_ids = [
            f"S{i:03d}" for i in range(1, config.num_servers + 1)
        ]
        self.client_ids = [
            f"C{i:02d}" for i in range(1, config.num_clients + 1)
        ]
        node_ids = self.server_ids + self.client_ids
        if config.oversubscription is None:
            self.topology: Topology = SingleSwitchTopology(
                node_ids, config.link_bandwidth
            )
        else:
            self.topology = FatTreeTopology(
                node_ids,
                config.link_bandwidth,
                servers_per_rack=config.servers_per_rack,
                oversubscription=config.oversubscription,
            )

        if config.incast_threshold is not None:
            for link in self.topology.ingress.values():
                link.incast_threshold = config.incast_threshold
                link.incast_gamma = config.incast_gamma

        self.servers: "Dict[str, ChunkServer]" = {
            sid: ChunkServer(
                self, sid, config.disk_bandwidth, config.cache_bytes
            )
            for sid in self.server_ids
        }
        # Clients are created by fs.client to avoid an import cycle.
        from repro.fs.client import Client

        self.clients: "Dict[str, Client]" = {
            cid: Client(self, cid) for cid in self.client_ids
        }

        failure_domain = {
            sid: i // config.servers_per_rack
            for i, sid in enumerate(self.server_ids)
        }
        upgrade_domain = {
            sid: i % 4 for i, sid in enumerate(self.server_ids)
        }
        # Placement draws come from a named child stream, not the
        # cluster-global one: workload randomness (payloads, failure
        # injection) no longer shifts where stripes land, so placement
        # geometry is reproducible from (seed, strategy) alone.
        self.placement = make_placement(
            config.placement,
            failure_domain,
            upgrade_domain,
            rng=derive_rng(config.seed, "placement", config.placement),
            scatter_width=config.scatter_width,
        )

        from repro.fs.metaserver import MetaServer

        self.metaserver = MetaServer(self)

        self.traffic = TrafficMatrix()
        self._stripe_counter = itertools.count(1)
        self._repair_counter = itertools.count(1)
        self._repairs: "Dict[str, object]" = {}
        #: Ground truth: chunk_id -> payload written at encode time.
        self._truth: "Dict[str, np.ndarray]" = {}
        #: Continuous telemetry, populated by :meth:`enable_telemetry`.
        self.telemetry: "Optional[TimeSeriesStore]" = None
        self._sampler: "Optional[Sampler]" = None
        #: Fleet collector (tiered retention + rollups), populated by
        #: :meth:`enable_collector`.
        self.collector: "Optional[TelemetryCollector]" = None
        self._collector_shipper: "Optional[TelemetryShipper]" = None
        self._collector_last_ship: float = 0.0
        #: QoS admission controller, populated by :meth:`enable_qos`.
        self.admission = None

    # ------------------------------------------------------------------
    # Presets for the paper's two testbeds
    # ------------------------------------------------------------------
    @classmethod
    def smallsite(cls, **overrides) -> "StorageCluster":
        """The 16-host, 1 Gbps lab cluster of §7 (one machine per rack)."""
        defaults = dict(num_servers=16, servers_per_rack=1)
        defaults.update(overrides)
        return cls(replace(ClusterConfig(), **defaults))

    @classmethod
    def bigsite(cls, **overrides) -> "StorageCluster":
        """The 85-host production cluster (measured ~1.4 Gbps)."""
        defaults = dict(num_servers=85, link_bandwidth="1.4Gbps")
        defaults.update(overrides)
        return cls(replace(ClusterConfig(), **defaults))

    # ------------------------------------------------------------------
    # Node lookup
    # ------------------------------------------------------------------
    def node(self, node_id: str):
        if node_id in self.servers:
            return self.servers[node_id]
        if node_id in self.clients:
            return self.clients[node_id]
        raise StorageError(f"unknown node {node_id!r}")

    def chunk_server(self, server_id: str) -> ChunkServer:
        server = self.servers.get(server_id)
        if server is None:
            raise StorageError(f"unknown chunk server {server_id!r}")
        return server

    def client(self, client_id: "Optional[str]" = None):
        if client_id is None:
            client_id = self.client_ids[0]
        return self.clients[client_id]

    def alive_servers(self) -> "List[str]":
        return [sid for sid, srv in self.servers.items() if srv.alive]

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send_control(
        self, dst_node_id: str, fn: "Callable[..., None]", *args
    ) -> None:
        """Small control message: fixed latency, no bandwidth accounting.

        Messages to servers that are dead *at delivery time* are dropped —
        like a lost RPC, the sender recovers via the RM's repair timeout.
        """

        def deliver() -> None:
            server = self.servers.get(dst_node_id)
            if server is not None and not server.alive:
                return
            fn(*args)

        self.sim.schedule(self.config.control_latency, deliver)

    def start_flow(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_complete: "Callable[[Flow], None]",
        traffic_class: str = "foreground",
    ) -> Flow:
        """Bulk transfer over the topology path from ``src`` to ``dst``.

        ``traffic_class`` tags the flow for QoS accounting and admission
        control ("foreground" user reads, "degraded" reads, "repair"
        reconstruction traffic); all classes share the same max-min
        fair-share computation once admitted.
        """

        def done(flow: Flow) -> None:
            self.traffic.add(src, dst, nbytes)
            on_complete(flow)

        return self.network.start_flow(
            self.topology.path(src, dst),
            nbytes,
            done,
            src=src,
            dst=dst,
            traffic_class=traffic_class,
        )

    # ------------------------------------------------------------------
    # Data plane: writing stripes
    # ------------------------------------------------------------------
    def write_stripe(
        self,
        code: ErasureCode,
        chunk_size: "float | str",
        data: "Optional[np.ndarray]" = None,
        hosts: "Optional[Sequence[str]]" = None,
    ) -> Stripe:
        """Encode and place one stripe; returns its metadata.

        ``chunk_size`` is the *modeled* per-chunk size (e.g. ``"64MiB"``);
        real payloads are ``config.payload_bytes`` per chunk.  ``data`` may
        supply the real payload stack ``(k, payload_bytes)``; random bytes
        otherwise.
        """
        modeled = float(parse_size(chunk_size))
        payload_len = self.config.payload_bytes
        if payload_len % code.rows:
            raise ConfigurationError(
                f"payload_bytes={payload_len} not divisible by code rows "
                f"{code.rows}"
            )
        if data is None:
            data = self.rng.integers(
                0, 256, size=(code.k, payload_len), dtype=np.uint8
            )
        else:
            data = np.asarray(data, dtype=np.uint8)
            if data.shape != (code.k, payload_len):
                raise ConfigurationError(
                    f"data must have shape ({code.k}, {payload_len})"
                )
        encoded = code.encode(data)

        stripe_id = f"stripe-{next(self._stripe_counter):04d}"
        chunk_ids = [f"{stripe_id}/chunk-{i:02d}" for i in range(code.n)]
        if hosts is None:
            hosts = self.placement.place_stripe(self.alive_servers(), code.n)
        elif len(hosts) != code.n:
            raise ConfigurationError(
                f"need {code.n} hosts, got {len(hosts)}"
            )
        stripe = Stripe(
            stripe_id=stripe_id,
            code=code,
            chunk_ids=chunk_ids,
            chunk_size=modeled,
            payload_len=payload_len,
        )
        for index, (chunk_id, host) in enumerate(zip(chunk_ids, hosts)):
            payload = encoded[index].copy()
            chunk = Chunk(
                chunk_id=chunk_id,
                stripe_id=stripe_id,
                index=index,
                payload=payload,
                size=modeled,
            )
            self.servers[host].store_chunk(chunk)
            self._truth[chunk_id] = payload.copy()
            self.metaserver.register_chunk(chunk_id, host)
        self.metaserver.register_stripe(stripe, list(hosts))
        return stripe

    def truth_payload(self, chunk_id: str) -> "Optional[np.ndarray]":
        return self._truth.get(chunk_id)

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def kill_server(self, server_id: str) -> "List[str]":
        """Crash a chunk server; returns the chunk ids it hosted.

        In-flight bulk transfers to or from the victim are aborted (their
        completion callbacks never fire), so repairs that depended on it
        stall until the Repair-Manager's timeout reschedules them.
        """
        server = self.chunk_server(server_id)
        if not server.alive:
            return []
        lost = list(server.chunks)
        server.kill()
        self.network.cancel_flows_touching(server_id)
        self.metaserver.server_failed(server_id)
        return lost

    # ------------------------------------------------------------------
    # Repair registry (contexts are created by the coordinator)
    # ------------------------------------------------------------------
    def new_repair_id(self) -> str:
        return f"repair-{next(self._repair_counter):05d}"

    def register_repair(self, context) -> None:
        self._repairs[context.repair_id] = context

    def repair_context(self, repair_id: str):
        return self._repairs.get(repair_id)

    def repair_finished(self, context, chunk_payload: np.ndarray) -> None:
        """Called by the context on completion; commits metadata updates."""
        self._repairs.pop(context.repair_id, None)
        if context.kind != "repair":
            return
        chunk_id = context.stripe.chunk_ids[context.lost_index]
        destination = context.destination
        server = self.servers.get(destination)
        if server is None or not server.alive:
            return
        server.store_chunk(
            Chunk(
                chunk_id=chunk_id,
                stripe_id=context.stripe.stripe_id,
                index=context.lost_index,
                payload=chunk_payload.copy(),
                size=context.chunk_size,
            )
        )
        server.active_repair_destinations = max(
            0, server.active_repair_destinations - 1
        )
        self.metaserver.register_chunk(chunk_id, destination)
        self.metaserver.repair_completed(context)

    # ------------------------------------------------------------------
    # Continuous telemetry
    # ------------------------------------------------------------------
    def enable_telemetry(
        self, interval: float = 0.05, capacity: int = 512
    ) -> TimeSeriesStore:
        """Sample cluster health into bounded time series every ``interval``
        virtual seconds.

        Registers per-server probes — ingress/egress link utilization,
        disk queue depth, cache occupancy — plus the cluster-wide inflight
        repair count, driven by a clock observer on the event loop.  The
        sampler piggybacks on executed events (it schedules nothing), so
        enabling telemetry changes simulation results by exactly zero.

        Idempotent: calling again returns the existing store.
        """
        if self.telemetry is not None:
            return self.telemetry
        store = TimeSeriesStore(capacity=capacity)
        sampler = Sampler(store, interval=interval)
        specs = []
        ingress_links = self.topology.ingress
        egress_links = self.topology.egress
        for sid in self.server_ids:
            server = self.servers[sid]
            labels = {"node": sid}
            ingress = ingress_links.get(sid)
            egress = egress_links.get(sid)
            if ingress is not None:
                specs.append(
                    ("net.ingress_util", labels, ingress.utilization)
                )
            if egress is not None:
                specs.append(("net.egress_util", labels, egress.utilization))
            specs.append(
                (
                    "disk.queue_depth",
                    labels,
                    lambda disk=server.disk: disk.queue_depth,
                )
            )
            specs.append(
                (
                    "cache.occupancy",
                    labels,
                    lambda cache=server.cache: cache.occupancy,
                )
            )
        specs.append(
            ("repairs.inflight", {}, lambda: len(self._repairs))
        )
        sampler.add_probes(specs)
        self.sim.add_clock_observer(sampler.observe_clock)
        self.telemetry = store
        self._sampler = sampler
        if self.admission is not None:
            self._register_qos_probes()
        return store

    def enable_collector(
        self,
        ship_interval: "Optional[float]" = None,
        raw_capacity: int = 512,
        max_queue: int = 8,
    ) -> TelemetryCollector:
        """Funnel the cluster's telemetry through the fleet collector.

        Enables :meth:`enable_telemetry` if it is not already on, then
        ships the sampled series into a
        :class:`~repro.obs.collector.TelemetryCollector` on the
        heartbeat cadence (``ship_interval`` defaults to
        ``config.heartbeat_interval``) via the *same*
        :class:`~repro.obs.collector.TelemetryShipper` delta/cursor code
        path live nodes use — so sim and live share one rollup, query
        and cockpit surface.  Shipping piggybacks on a clock observer
        (no events scheduled): enabling the collector changes simulated
        results by exactly zero.

        Idempotent: calling again returns the existing collector.
        """
        if self.collector is not None:
            return self.collector
        store = self.enable_telemetry()
        interval = (
            float(ship_interval)
            if ship_interval is not None
            else self.config.heartbeat_interval
        )
        if interval <= 0:
            raise ConfigurationError(
                f"ship_interval must be > 0, got {interval}"
            )
        collector = TelemetryCollector(raw_capacity=raw_capacity)
        shipper = TelemetryShipper(
            "sim", store, max_queue=max_queue
        )
        self.collector = collector
        self._collector_shipper = shipper
        self._collector_last_ship = 0.0

        def ship(now: float) -> None:
            if now - self._collector_last_ship >= interval:
                self._collector_last_ship = now
                shipper.collect(now)
                shipper.flush(collector.ingest)

        self.sim.add_clock_observer(ship)
        return collector

    # ------------------------------------------------------------------
    # QoS admission control
    # ------------------------------------------------------------------
    def enable_qos(self, config=None):
        """Attach a two-class admission controller to the fabric.

        Repair-class flows are paced by per-egress-link token buckets;
        foreground and degraded reads pass undelayed (see
        :mod:`repro.qos.admission`).  Idempotent: calling again returns
        the existing controller.
        """
        if self.admission is not None:
            return self.admission
        from repro.qos.admission import AdmissionController

        controller = AdmissionController(config)
        self.admission = controller
        self.network.admission = controller
        if self._sampler is not None:
            self._register_qos_probes()
        return controller

    def _register_qos_probes(self) -> None:
        """Per-class byte counters + bucket occupancy into telemetry."""
        assert self._sampler is not None and self.admission is not None
        network = self.network
        self._sampler.add_probes(
            [
                (
                    "qos.class_bytes",
                    {"class": cls},
                    lambda c=cls: network.class_bytes_moved.get(c, 0.0),
                )
                for cls in ("foreground", "degraded", "repair")
            ]
            + [
                (
                    "qos.bucket.occupancy",
                    {},
                    self.admission.mean_occupancy,
                )
            ]
        )

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------
    def run(self, until: "Optional[float]" = None) -> float:
        return self.sim.run(until)
