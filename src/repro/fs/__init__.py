"""QFS-like distributed storage system running on the simulator.

Mirrors the architecture of §6.1: a centralized :class:`MetaServer`
(namespace, chunk → server maps, heartbeats, failure detection, and the
Repair-Manager), :class:`ChunkServer` actors that host chunks and execute
the PPR partial-operation protocol of §6.2, and :class:`Client` actors that
issue normal and degraded reads.

Everything is glued together by :class:`StorageCluster`, which owns the
simulation, the topology, and placement.
"""

from repro.fs.chunks import Chunk, Stripe
from repro.fs.cluster import StorageCluster, ClusterConfig
from repro.fs.chunkserver import ChunkServer
from repro.fs.metaserver import MetaServer
from repro.fs.client import Client
from repro.fs.placement import PlacementPolicy
from repro.fs.filesystem import FileMeta, FileReadResult, FileSystem

__all__ = [
    "FileMeta",
    "FileReadResult",
    "FileSystem",
    "Chunk",
    "Stripe",
    "StorageCluster",
    "ClusterConfig",
    "ChunkServer",
    "MetaServer",
    "Client",
    "PlacementPolicy",
]
