"""Storage nodes and the reconstruction state machines they run.

:class:`StorageNode` is anything attached to the network (chunk server or
client).  Two task types implement the paper's repair execution paths:

* :class:`PartialAggregationTask` — the PPR protocol of §6.2 at one node:
  read + scale the local chunk (overlapping disk IO with network, §6.3),
  XOR in downstream partials as they arrive, and forward the aggregate to
  the upstream peer (or finish, at the repair site).
* :class:`RawCollectionTask` — traditional/staggered repair at the
  destination: fetch raw rows from every helper (all at once or serially)
  and decode centrally.

All bulk payloads are real numpy buffers, so every reconstruction is
verifiable; all timing uses modeled byte counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.fs.messages import (
    PartialOpRequest,
    PartialPayload,
    RawPayload,
    compute_partial,
)
from repro.codes.recipe import RepairRecipe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.cluster import StorageCluster
    from repro.core.context import RepairContext


class StorageNode:
    """A network-attached participant: id, compute serialization, flows."""

    def __init__(self, cluster: "StorageCluster", node_id: str):
        self.cluster = cluster
        self.sim = cluster.sim
        self.node_id = node_id
        self.alive = True
        self._compute_busy_until = 0.0
        #: repair_id -> task awaiting flows at this node.
        self.tasks: "Dict[str, object]" = {}

    # ------------------------------------------------------------------
    # Compute resource: repair math serializes on one core per node
    # ------------------------------------------------------------------
    def schedule_compute(self, duration: float, callback, *args) -> float:
        """Queue ``duration`` seconds of computation; fire callback after.

        Returns the completion time.  Also records the busy interval so the
        context can attribute it to the compute phase.
        """
        start = max(self.sim.now, self._compute_busy_until)
        finish = start + duration
        self._compute_busy_until = finish
        self.sim.schedule_at(finish, callback, *args)
        return finish

    # ------------------------------------------------------------------
    # Protocol entry points
    # ------------------------------------------------------------------
    def handle_partial_request(self, request: PartialOpRequest) -> None:
        """Start this node's role in a PPR reduction (§6.2).

        Valid on any node: chunk servers read + scale a local chunk; pure
        aggregators and repair destinations (including degraded-read
        clients) have ``request.chunk_id is None`` and only merge.
        """
        context = self.cluster.repair_context(request.repair_id)
        if context is None:
            return  # repair cancelled before the plan arrived
        PartialAggregationTask(self, context, request)

    def task_finished(self, repair_id: str) -> None:
        """Hook: a reconstruction task at this node completed."""

    # ------------------------------------------------------------------
    # Flow delivery
    # ------------------------------------------------------------------
    def deliver(self, payload: object) -> None:
        """A bulk transfer addressed to this node has fully arrived."""
        if isinstance(payload, (PartialPayload, RawPayload)):
            task = self.tasks.get(payload.repair_id)
            if task is None:
                return  # repair was cancelled/rescheduled; drop silently
            task.on_payload(payload)  # type: ignore[attr-defined]
            return
        raise SimulationError(f"unroutable payload {payload!r} at {self.node_id}")


def _partial_modeled_bytes(
    partial: "Dict[int, np.ndarray]", rows: int, chunk_size: float,
    num_slices: int,
) -> float:
    """Modeled bytes one slice of a partial map occupies in memory."""
    if not partial:
        return 0.0
    return len(partial) / rows * chunk_size / num_slices


def _slice_view(
    buffers: "Dict[int, np.ndarray]", num_slices: int, index: int
) -> "Dict[int, np.ndarray]":
    """Slice ``index`` of every row buffer (consistent integer bounds)."""
    out: "Dict[int, np.ndarray]" = {}
    for row, buf in buffers.items():
        lo = buf.size * index // num_slices
        hi = buf.size * (index + 1) // num_slices
        out[row] = buf[lo:hi].copy()
    return out


class PartialAggregationTask:
    """One node's role in a PPR/chain reduction (§6.2 state machine).

    Slice-aware: with ``request.num_slices == S > 1`` the chunk is cut
    into S slices that flow through the plan independently, so a node
    forwards slice ``s`` as soon as its own read and every child's slice
    ``s`` are in — the repair-pipelining extension.  ``S == 1`` reproduces
    the paper's store-and-forward PPR exactly.
    """

    def __init__(
        self,
        node: StorageNode,
        context: "RepairContext",
        request: PartialOpRequest,
    ):
        self.node = node
        self.context = context
        self.request = request
        self.slices = max(1, request.num_slices)
        #: per-slice accumulated partial: slice -> {lost_row -> buffer}.
        self.partial: "List[Dict[int, np.ndarray]]" = [
            {} for _ in range(self.slices)
        ]
        self.expected_per_slice = len(request.children) + (
            1 if request.chunk_id else 0
        )
        self.received = [0] * self.slices
        self.completed_slices = 0
        self.done = False
        self._local_partial: "Optional[Dict[int, np.ndarray]]" = None
        node.tasks[request.repair_id] = self
        context.register_task(self)
        self._start()

    # -- startup -------------------------------------------------------
    def _start(self) -> None:
        req = self.request
        # Forward plan commands to downstream leaf peers first, so their
        # reads/transfers overlap the local disk read (§6.3 pipelining).
        self.context.send_leaf_requests(self.node.node_id)
        if req.chunk_id is not None:
            self._begin_local_reads()
        if self.expected_per_slice == 0:
            for index in range(self.slices):
                self._slice_complete(index)

    def _begin_local_reads(self) -> None:
        req = self.request
        chunkserver = self.node  # only chunk servers host chunks
        total_read = req.read_fraction * req.chunk_size
        hit = chunkserver.lookup_cache(req.chunk_id)  # type: ignore[attr-defined]
        if hit:
            self.context.record_cache_hit()
            for index in range(self.slices):
                self._local_slice_ready(index)
            return
        for index in range(self.slices):
            start = self.node.sim.now

            def on_read_done(index: int = index, start: float = start) -> None:
                if index == self.slices - 1:
                    chunkserver.fill_cache(req.chunk_id)  # type: ignore[attr-defined]
                self.context.record_phase(
                    "disk_read",
                    start,
                    self.node.sim.now,
                    node_id=self.node.node_id,
                    nbytes=total_read / self.slices,
                )
                self._local_slice_ready(index)

            chunkserver.disk.read(  # type: ignore[attr-defined]
                total_read / self.slices, on_read_done
            )

    def _ensure_local_partial(self) -> "Dict[int, np.ndarray]":
        """Compute the full local partial once (real math; timing is
        charged per slice by the callers).

        Driven by the plan command's own ``entries`` — the same code path
        a live chunk server runs on a :class:`PartialOpRequest` received
        over TCP, so simulated and live repairs share their GF math.
        """
        if self._local_partial is None:
            req = self.request
            chunk = self.node.get_chunk(req.chunk_id)  # type: ignore[attr-defined]
            self._local_partial = compute_partial(
                req.entries, req.rows, chunk.payload
            )
        return self._local_partial

    def _local_slice_ready(self, index: int) -> None:
        req = self.request
        read_bytes = req.read_fraction * req.chunk_size / self.slices
        duration = self.context.compute.multiply_time(read_bytes)
        compute_start = self.node.sim.now

        def on_multiplied() -> None:
            if self.done or not self.node.alive:
                return  # the server died under us; the RM will reschedule
            self.context.record_phase(
                "compute",
                compute_start,
                self.node.sim.now,
                node_id=self.node.node_id,
                op="multiply",
            )
            local = _slice_view(
                self._ensure_local_partial(), self.slices, index
            )
            req2 = self.request
            before = _partial_modeled_bytes(
                self.partial[index], req2.rows, req2.chunk_size, self.slices
            )
            self.partial[index] = RepairRecipe.merge_partials(
                self.partial[index], local
            )
            after = _partial_modeled_bytes(
                self.partial[index], req2.rows, req2.chunk_size, self.slices
            )
            self.context.note_buffer(self.node.node_id, after - before)
            self._input_done(index)

        self.node.schedule_compute(duration, on_multiplied)

    # -- downstream partials -------------------------------------------
    def on_payload(self, payload: PartialPayload) -> None:
        if self.done:
            return
        index = payload.slice_index
        nbytes = (
            len(payload.buffers)
            / self.request.rows
            * self.request.chunk_size
            / self.slices
        )
        duration = self.context.compute.xor_time(nbytes)
        start = self.node.sim.now
        self.context.note_buffer(self.node.node_id, nbytes)

        def on_xored() -> None:
            if self.done or not self.node.alive:
                return
            self.context.record_phase(
                "compute",
                start,
                self.node.sim.now,
                node_id=self.node.node_id,
                op="xor",
                nbytes=nbytes,
            )
            req2 = self.request
            before = _partial_modeled_bytes(
                self.partial[index], req2.rows, req2.chunk_size, self.slices
            )
            self.partial[index] = RepairRecipe.merge_partials(
                self.partial[index], payload.buffers
            )
            after = _partial_modeled_bytes(
                self.partial[index], req2.rows, req2.chunk_size, self.slices
            )
            # The receive buffer is folded into the partial.
            self.context.note_buffer(
                self.node.node_id, (after - before) - nbytes
            )
            self._input_done(index)

        self.node.schedule_compute(duration, on_xored)

    def _input_done(self, index: int) -> None:
        self.received[index] += 1
        if self.received[index] == self.expected_per_slice:
            self._slice_complete(index)

    # -- completion ------------------------------------------------------
    def _slice_complete(self, index: int) -> None:
        if not self.node.alive:
            return
        req = self.request
        if req.parent is not None:
            payload = PartialPayload(
                repair_id=req.repair_id,
                sender=self.node.node_id,
                buffers=self.partial[index],
                slice_index=index,
            )
            self.context.start_transfer(
                src=self.node.node_id,
                dst=req.parent,
                nbytes=req.send_fraction * req.chunk_size / self.slices,
                payload=payload,
            )
            self.context.note_buffer(
                self.node.node_id,
                -_partial_modeled_bytes(
                    self.partial[index], req.rows, req.chunk_size, self.slices
                ),
            )
        self.completed_slices += 1
        if self.completed_slices < self.slices:
            return
        self.done = True
        self.node.tasks.pop(req.repair_id, None)
        self.node.task_finished(req.repair_id)
        if req.parent is None:
            # This node is the repair destination: stitch slices back.
            rows: "Dict[int, np.ndarray]" = {}
            row_keys = set()
            for piece in self.partial:
                row_keys.update(piece.keys())
            for row in row_keys:
                rows[row] = np.concatenate(
                    [
                        piece[row]
                        for piece in self.partial
                        if row in piece
                    ]
                )
            chunk_payload = self.context.recipe.assemble(rows)
            self.context.finish_at_destination(self.node, chunk_payload)


class RawCollectionTask:
    """Traditional (star) or staggered repair at the destination."""

    def __init__(
        self,
        node: StorageNode,
        context: "RepairContext",
        staggered: bool,
    ):
        self.node = node
        self.context = context
        self.staggered = staggered
        self.raw: "Dict[int, Dict[int, np.ndarray]]" = {}
        self.pending: "List[int]" = list(context.recipe.helpers)
        self.outstanding = 0
        self.done = False
        node.tasks[context.repair_id] = self
        context.register_task(self)
        self._issue_requests()

    def _issue_requests(self) -> None:
        batch = self.pending[:1] if self.staggered else self.pending[:]
        del self.pending[: len(batch)]
        for helper_index in batch:
            self.outstanding += 1
            self.context.send_raw_read(helper_index, self.node.node_id)

    def on_payload(self, payload: RawPayload) -> None:
        if self.done:
            return
        self.raw[payload.chunk_index] = payload.buffers
        self.context.note_buffer(
            self.node.node_id,
            self.context.recipe.raw_fraction(payload.chunk_index)
            * self.context.chunk_size,
        )
        self.outstanding -= 1
        if self.pending:
            self._issue_requests()
            return
        if self.outstanding == 0:
            self._decode()

    def _decode(self) -> None:
        self.done = True
        context = self.context
        self.node.tasks.pop(context.repair_id, None)
        k = len(context.recipe.helpers)
        total_bytes = context.recipe.total_raw_fraction() * context.chunk_size
        # Table 2's serial critical path: k multiplies + k XORs over the
        # gathered data.
        duration = context.compute.multiply_time(total_bytes / max(k, 1)) * k
        duration += context.compute.xor_time(total_bytes / max(k, 1)) * k
        start = self.node.sim.now

        def on_decoded() -> None:
            if not self.node.alive:
                return  # destination died; the RM timeout reschedules
            context.record_phase(
                "compute",
                start,
                self.node.sim.now,
                node_id=self.node.node_id,
                op="decode",
                nbytes=total_bytes,
            )
            chunk_payload = context.recipe.execute_rows(self.raw)
            context.finish_at_destination(self.node, chunk_payload)

        self.node.schedule_compute(duration, on_decoded)
