"""Chunk servers: host chunks, serve reads, run PPR partial operations.

Each chunk server owns a FIFO disk, an in-memory LRU chunk cache (§4.4),
and counters the Repair-Manager's m-PPR weights consume via heartbeats:
active reconstructions, active repair destinations, and user load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro import obs
from repro.errors import ChunkNotFoundError, ServerUnavailableError
from repro.fs.chunks import Chunk
from repro.fs.messages import (
    Heartbeat,
    PartialOpRequest,
    RawPayload,
    RawReadRequest,
    extract_rows,
)
from repro.fs.node import StorageNode
from repro.sim.cache import LRUCache
from repro.sim.disk import Disk

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


class ChunkServer(StorageNode):
    """One storage server (the paper's QFS Chunk Server)."""

    def __init__(
        self,
        cluster: "StorageCluster",
        server_id: str,
        disk_bandwidth: "float | str",
        cache_bytes: float,
    ):
        super().__init__(cluster, server_id)
        self.disk = Disk(cluster.sim, disk_bandwidth)
        self.disk.owner = server_id
        self.cache = LRUCache(cache_bytes)
        self.chunks: "Dict[str, Chunk]" = {}
        self.active_reconstructions = 0
        self.active_repair_destinations = 0
        self.user_load_bytes = 0.0

    # ------------------------------------------------------------------
    # Chunk storage
    # ------------------------------------------------------------------
    def store_chunk(self, chunk: Chunk) -> None:
        self.chunks[chunk.chunk_id] = chunk

    def drop_chunk(self, chunk_id: str) -> None:
        self.chunks.pop(chunk_id, None)
        self.cache.evict(chunk_id)

    def has_chunk(self, chunk_id: str) -> bool:
        return chunk_id in self.chunks

    def get_chunk(self, chunk_id: "Optional[str]") -> Chunk:
        if chunk_id is None or chunk_id not in self.chunks:
            raise ChunkNotFoundError(
                f"server {self.node_id} does not host chunk {chunk_id}"
            )
        return self.chunks[chunk_id]

    # ------------------------------------------------------------------
    # Cache (§4.4): consulted before disk reads
    # ------------------------------------------------------------------
    def lookup_cache(self, chunk_id: str) -> bool:
        """True when the chunk's bytes are already in memory."""
        hit = self.cache.access(chunk_id, self.sim.now)
        if obs.tracer() is not None:
            obs.registry().counter(
                "sim.cache.hits" if hit else "sim.cache.misses",
                node=self.node_id,
            ).inc()
        return hit

    def fill_cache(self, chunk_id: str) -> None:
        """Record that a disk read brought the chunk into memory."""
        chunk = self.chunks.get(chunk_id)
        if chunk is not None:
            self.cache.insert(chunk_id, chunk.size, self.sim.now)

    def warm_cache(self, chunk_id: str) -> None:
        """Pre-load a chunk (experiments that model prior user access)."""
        self.fill_cache(chunk_id)

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Crash the server: chunks become unavailable, tasks die."""
        self.alive = False
        self.tasks.clear()

    def _require_alive(self) -> None:
        if not self.alive:
            raise ServerUnavailableError(f"server {self.node_id} is down")

    # ------------------------------------------------------------------
    # Protocol handlers (invoked via control messages)
    # ------------------------------------------------------------------
    def handle_partial_request(self, request: PartialOpRequest) -> None:
        """§6.2: start this server's role in a PPR reduction."""
        self._require_alive()
        if self.cluster.repair_context(request.repair_id) is None:
            return  # repair cancelled before the plan arrived
        self.active_reconstructions += 1
        super().handle_partial_request(request)

    def task_finished(self, repair_id: str) -> None:
        self.active_reconstructions = max(0, self.active_reconstructions - 1)

    def handle_raw_read(self, request: RawReadRequest) -> None:
        """Traditional repair fetch: read rows, ship them raw."""
        self._require_alive()
        context = self.cluster.repair_context(request.repair_id)
        if context is None:
            return
        self.active_reconstructions += 1
        read_bytes = (
            len(request.rows_needed) / request.rows * request.chunk_size
        )
        start = self.sim.now
        chunk_index = context.stripe_index_of(self.node_id)

        def send() -> None:
            chunk = self.get_chunk(request.chunk_id)
            # Slice the rows the request names — the live TCP raw-read
            # handler runs the same extract_rows on the same message.
            payload = RawPayload(
                repair_id=request.repair_id,
                sender=self.node_id,
                chunk_index=chunk_index,
                buffers=extract_rows(
                    chunk.payload, request.rows, request.rows_needed
                ),
            )
            context.start_transfer(
                src=self.node_id,
                dst=request.requester,
                nbytes=read_bytes,
                payload=payload,
            )
            self.active_reconstructions -= 1

        if self.lookup_cache(request.chunk_id):
            context.record_cache_hit()
            self.sim.schedule(0.0, send)
            return

        def on_read() -> None:
            self.fill_cache(request.chunk_id)
            context.record_phase(
                "disk_read",
                start,
                self.sim.now,
                node_id=self.node_id,
                nbytes=read_bytes,
            )
            send()

        self.disk.read(read_bytes, on_read)

    # ------------------------------------------------------------------
    # Heartbeats (§5: RM state is refreshed every few seconds)
    # ------------------------------------------------------------------
    def make_heartbeat(self) -> Heartbeat:
        return Heartbeat(
            server_id=self.node_id,
            time=self.sim.now,
            cached_chunk_ids=frozenset(
                chunk_id for chunk_id in self.chunks if chunk_id in self.cache
            ),
            active_reconstructions=self.active_reconstructions,
            active_repair_destinations=self.active_repair_destinations,
            user_load_bytes=self.user_load_bytes,
            disk_queue_delay=self.disk.queue_delay,
        )
