"""The Meta-Server: namespace, heartbeats, failure detection, and the RM.

Mirrors §6.1: chunk → server maps and stripe metadata live here; chunk
servers send heartbeats every few seconds; missed heartbeats (or an
explicit crash notification) mark a server dead and enqueue its chunks
with the Repair-Manager, which schedules reconstructions via m-PPR.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import ChunkNotFoundError
from repro.fs.chunks import Stripe
from repro.fs.messages import Heartbeat

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster
    from repro.core.context import RepairContext
    from repro.core.mppr import RepairManager


def heartbeat_is_stale(
    beat: "Optional[Heartbeat]", now: float, timeout: float
) -> bool:
    """§5's failure-detection rule: no beat, or the last one is too old.

    Shared with the live deployment's meta server, whose ``now`` is wall
    clock instead of simulated time — the rule is the same.
    """
    return beat is None or (now - beat.time) > timeout


class MetaServer:
    """Centralized metadata service + Repair-Manager host."""

    def __init__(self, cluster: "StorageCluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self.chunk_locations: "Dict[str, str]" = {}
        self.stripes: "Dict[str, Stripe]" = {}
        self.stripe_of_chunk: "Dict[str, str]" = {}
        self.last_heartbeat: "Dict[str, Heartbeat]" = {}
        self.dead_servers: "Set[str]" = set()
        self.missing_chunks: "List[str]" = []
        self._repair_manager: "Optional[RepairManager]" = None
        self._heartbeats_started = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_stripe(self, stripe: Stripe, hosts: "List[str]") -> None:
        self.stripes[stripe.stripe_id] = stripe
        for chunk_id in stripe.chunk_ids:
            self.stripe_of_chunk[chunk_id] = stripe.stripe_id

    def register_chunk(self, chunk_id: str, server_id: str) -> None:
        self.chunk_locations[chunk_id] = server_id

    def stripe_for_chunk(self, chunk_id: str) -> Stripe:
        stripe_id = self.stripe_of_chunk.get(chunk_id)
        if stripe_id is None:
            raise ChunkNotFoundError(f"unknown chunk {chunk_id!r}")
        return self.stripes[stripe_id]

    def locate_chunk(self, chunk_id: str) -> "Optional[str]":
        """Server currently hosting the chunk, or None if unavailable."""
        server_id = self.chunk_locations.get(chunk_id)
        if server_id is None:
            return None
        server = self.cluster.servers.get(server_id)
        if server is None or not server.alive or not server.has_chunk(chunk_id):
            return None
        return server_id

    def alive_host_indices(self, stripe: Stripe) -> "Dict[int, str]":
        """Stripe chunk index -> hosting server, for chunks still readable."""
        out: "Dict[int, str]" = {}
        for index, chunk_id in enumerate(stripe.chunk_ids):
            host = self.locate_chunk(chunk_id)
            if host is not None:
                out[index] = host
        return out

    # ------------------------------------------------------------------
    # Repair-Manager attachment
    # ------------------------------------------------------------------
    @property
    def repair_manager(self) -> "RepairManager":
        if self._repair_manager is None:
            from repro.core.mppr import RepairManager

            self._repair_manager = RepairManager(self.cluster)
        return self._repair_manager

    # ------------------------------------------------------------------
    # Heartbeats + failure detection
    # ------------------------------------------------------------------
    def start_heartbeats(self) -> None:
        """Begin periodic heartbeats from every server + staleness sweeps."""
        if self._heartbeats_started:
            return
        self._heartbeats_started = True
        interval = self.cluster.config.heartbeat_interval
        for i, server_id in enumerate(self.cluster.server_ids):
            # Stagger first beats so they do not all land on one tick.
            offset = (i / max(1, len(self.cluster.server_ids))) * interval
            self.sim.schedule(offset, self._heartbeat_tick, server_id)
        self.sim.schedule(interval, self._sweep)

    def _heartbeat_tick(self, server_id: str) -> None:
        server = self.cluster.servers.get(server_id)
        if server is None or not server.alive:
            return  # dead servers stop beating; the sweep notices
        self.last_heartbeat[server_id] = server.make_heartbeat()
        self.sim.schedule(
            self.cluster.config.heartbeat_interval,
            self._heartbeat_tick,
            server_id,
        )

    def _sweep(self) -> None:
        timeout = self.cluster.config.failure_detection_timeout
        for server_id in self.cluster.server_ids:
            if server_id in self.dead_servers:
                continue
            server = self.cluster.servers[server_id]
            beat = self.last_heartbeat.get(server_id)
            stale = heartbeat_is_stale(beat, self.sim.now, timeout)
            if not server.alive and stale:
                self.server_failed(server_id)
        self.sim.schedule(self.cluster.config.heartbeat_interval, self._sweep)

    def server_failed(self, server_id: str) -> None:
        """Mark a server dead and queue its chunks for reconstruction."""
        if server_id in self.dead_servers:
            return
        self.dead_servers.add(server_id)
        lost = [
            chunk_id
            for chunk_id, host in self.chunk_locations.items()
            if host == server_id
        ]
        for chunk_id in lost:
            if chunk_id not in self.missing_chunks:
                self.missing_chunks.append(chunk_id)
        if self._repair_manager is not None:
            self._repair_manager.enqueue_missing(lost)

    def repair_completed(self, context: "RepairContext") -> None:
        chunk_id = context.stripe.chunk_ids[context.lost_index]
        if chunk_id in self.missing_chunks:
            self.missing_chunks.remove(chunk_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def heartbeat_view(self, server_id: str) -> "Optional[Heartbeat]":
        """The RM's (possibly stale) view of a server — §5 'staleness'."""
        return self.last_heartbeat.get(server_id)
