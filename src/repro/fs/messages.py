"""Control-plane message types of the PPR protocol (§6.2).

Messages are small and modeled with a fixed control latency; bulk data
rides :class:`~repro.sim.network.Flow` objects whose ``meta`` carries the
real payload buffers.

The same dataclasses are the *live* wire protocol's vocabulary: every
message here knows how to round-trip through a JSON-compatible dict
(``to_wire`` / ``from_wire``), which is what ``repro.live.wire`` frames
onto TCP sockets.  The pure GF helpers at the bottom
(:func:`compute_partial`, :func:`extract_rows`) are shared between the
simulator's task state machines and the live chunk servers so both
execution layers run literally the same math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodingError
from repro.galois.vector import addmul


@dataclass(frozen=True)
class PartialOpRequest:
    """The RM's (or an upstream peer's) plan command to one server.

    Mirrors the paper's ``<x2:C2:S2, x3:C3:S3>`` plan messages: which local
    chunk to read and scale, which downstream peers will feed partials in,
    and which upstream peer receives the aggregate.
    """

    repair_id: str
    stripe_id: str
    #: Chunk id this server must read locally; None when the server is a
    #: pure aggregator/destination hosting no relevant chunk.
    chunk_id: "Optional[str]"
    #: Recipe entries for the local chunk: (lost_row, helper_row, coeff).
    entries: "Tuple[Tuple[int, int, int], ...]"
    #: Sub-chunk rows per chunk for this stripe's code.
    rows: int
    #: Modeled chunk size in bytes.
    chunk_size: float
    #: Downstream peers whose partial results this server aggregates.
    children: "Tuple[str, ...]"
    #: Upstream peer (server id) to forward the aggregate to; None at the
    #: repair destination.
    parent: "Optional[str]"
    #: Lost-chunk rows this node ships upstream (plan subtree union).
    send_rows: "FrozenSet[int]"
    #: Fraction of a chunk the upstream transfer occupies.
    send_fraction: float
    #: Fraction of the local chunk read from disk.
    read_fraction: float
    #: Pipelining factor: cut transfers into this many slices (1 = the
    #: paper's store-and-forward PPR; >1 = repair-pipelining extension).
    num_slices: int = 1

    def to_wire(self) -> "Dict[str, Any]":
        """JSON-compatible dict for the live TCP protocol."""
        return {
            "repair_id": self.repair_id,
            "stripe_id": self.stripe_id,
            "chunk_id": self.chunk_id,
            "entries": [list(entry) for entry in self.entries],
            "rows": self.rows,
            "chunk_size": self.chunk_size,
            "children": list(self.children),
            "parent": self.parent,
            "send_rows": sorted(self.send_rows),
            "send_fraction": self.send_fraction,
            "read_fraction": self.read_fraction,
            "num_slices": self.num_slices,
        }

    @classmethod
    def from_wire(cls, data: "Dict[str, Any]") -> "PartialOpRequest":
        return cls(
            repair_id=data["repair_id"],
            stripe_id=data["stripe_id"],
            chunk_id=data["chunk_id"],
            entries=tuple(
                (int(a), int(b), int(c)) for a, b, c in data["entries"]
            ),
            rows=int(data["rows"]),
            chunk_size=float(data["chunk_size"]),
            children=tuple(data["children"]),
            parent=data["parent"],
            send_rows=frozenset(int(r) for r in data["send_rows"]),
            send_fraction=float(data["send_fraction"]),
            read_fraction=float(data["read_fraction"]),
            num_slices=int(data.get("num_slices", 1)),
        )


@dataclass(frozen=True)
class RawReadRequest:
    """Traditional repair's fetch: send me your raw rows for this repair."""

    repair_id: str
    stripe_id: str
    chunk_id: str
    #: Helper rows to read and ship.
    rows_needed: "FrozenSet[int]"
    rows: int
    chunk_size: float
    requester: str

    def to_wire(self) -> "Dict[str, Any]":
        return {
            "repair_id": self.repair_id,
            "stripe_id": self.stripe_id,
            "chunk_id": self.chunk_id,
            "rows_needed": sorted(self.rows_needed),
            "rows": self.rows,
            "chunk_size": self.chunk_size,
            "requester": self.requester,
        }

    @classmethod
    def from_wire(cls, data: "Dict[str, Any]") -> "RawReadRequest":
        return cls(
            repair_id=data["repair_id"],
            stripe_id=data["stripe_id"],
            chunk_id=data["chunk_id"],
            rows_needed=frozenset(int(r) for r in data["rows_needed"]),
            rows=int(data["rows"]),
            chunk_size=float(data["chunk_size"]),
            requester=data["requester"],
        )


@dataclass
class PartialPayload:
    """Bulk payload of a partial-result transfer: lost_row -> buffer."""

    repair_id: str
    sender: str
    buffers: "Dict[int, np.ndarray]"
    #: Which pipeline slice this payload carries (0 when unsliced).
    slice_index: int = 0


@dataclass
class RawPayload:
    """Bulk payload of a raw-rows transfer: helper_row -> buffer."""

    repair_id: str
    sender: str
    chunk_index: int
    buffers: "Dict[int, np.ndarray]"


@dataclass(frozen=True)
class Heartbeat:
    """Chunk server -> Meta-Server liveness + statistics (every 5 s)."""

    server_id: str
    time: float
    cached_chunk_ids: "FrozenSet[str]"
    active_reconstructions: int
    active_repair_destinations: int
    user_load_bytes: float
    disk_queue_delay: float

    def to_wire(self) -> "Dict[str, Any]":
        return {
            "server_id": self.server_id,
            "time": self.time,
            "cached_chunk_ids": sorted(self.cached_chunk_ids),
            "active_reconstructions": self.active_reconstructions,
            "active_repair_destinations": self.active_repair_destinations,
            "user_load_bytes": self.user_load_bytes,
            "disk_queue_delay": self.disk_queue_delay,
        }

    @classmethod
    def from_wire(cls, data: "Dict[str, Any]") -> "Heartbeat":
        return cls(
            server_id=data["server_id"],
            time=float(data["time"]),
            cached_chunk_ids=frozenset(data["cached_chunk_ids"]),
            active_reconstructions=int(data["active_reconstructions"]),
            active_repair_destinations=int(data["active_repair_destinations"]),
            user_load_bytes=float(data["user_load_bytes"]),
            disk_queue_delay=float(data["disk_queue_delay"]),
        )


# ----------------------------------------------------------------------
# Shared GF helpers: the exact math both execution layers run
# ----------------------------------------------------------------------
def split_rows(payload: np.ndarray, rows: int) -> np.ndarray:
    """Reshape a 1-D chunk payload into its ``rows`` sub-chunk rows."""
    array = np.asarray(payload, dtype=np.uint8)
    if array.ndim != 1:
        raise CodingError("chunk buffers must be 1-D")
    if rows < 1 or array.size % rows:
        raise CodingError(
            f"chunk of {array.size} bytes not divisible into {rows} rows"
        )
    return array.reshape(rows, -1)


def compute_partial(
    entries: "Sequence[Tuple[int, int, int]]",
    rows: int,
    payload: np.ndarray,
) -> "Dict[int, np.ndarray]":
    """One server's partial result from its plan-command ``entries``.

    This is the local computation a :class:`PartialOpRequest` schedules
    (scalar multiplications only, §4.1 observation 2): for every
    ``(lost_row, helper_row, coeff)`` entry, XOR ``coeff * payload[row]``
    into the output buffer of ``lost_row``.  Identical math to
    :meth:`repro.codes.recipe.RepairRecipe.partial_result`, but driven by
    the wire message alone — no global recipe object needed — which is
    what lets a remote chunk server act on the plan command by itself.
    """
    stacked = split_rows(payload, rows)
    out: "Dict[int, np.ndarray]" = {}
    for lost_row, helper_row, coeff in entries:
        buf = out.get(lost_row)
        if buf is None:
            buf = np.zeros(stacked.shape[1], dtype=np.uint8)
            out[lost_row] = buf
        addmul(buf, coeff, stacked[helper_row])
    return out


def extract_rows(
    payload: np.ndarray, rows: int, rows_needed: "FrozenSet[int]"
) -> "Dict[int, np.ndarray]":
    """The helper rows a raw transfer ships: ``row -> buffer`` copies."""
    stacked = split_rows(payload, rows)
    return {int(row): stacked[row].copy() for row in sorted(rows_needed)}


# ----------------------------------------------------------------------
# Recipe wire form (the live raw-collection plan embeds the full recipe)
# ----------------------------------------------------------------------
def recipe_to_wire(recipe: "Any") -> "Dict[str, Any]":
    """Serialize a :class:`~repro.codes.recipe.RepairRecipe`."""
    return {
        "lost": recipe.lost,
        "rows": recipe.rows,
        "terms": [
            [term.helper, [list(entry) for entry in term.entries]]
            for term in recipe.terms
        ],
    }


def recipe_from_wire(data: "Dict[str, Any]") -> "Any":
    from repro.codes.recipe import RecipeTerm, RepairRecipe

    terms: "List[Any]" = []
    for helper, entries in data["terms"]:
        terms.append(
            RecipeTerm(
                helper=int(helper),
                entries=tuple(
                    (int(a), int(b), int(c)) for a, b, c in entries
                ),
            )
        )
    return RepairRecipe(
        lost=int(data["lost"]), rows=int(data["rows"]), terms=tuple(terms)
    )
