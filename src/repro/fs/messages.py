"""Control-plane message types of the PPR protocol (§6.2).

Messages are small and modeled with a fixed control latency; bulk data
rides :class:`~repro.sim.network.Flow` objects whose ``meta`` carries the
real payload buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class PartialOpRequest:
    """The RM's (or an upstream peer's) plan command to one server.

    Mirrors the paper's ``<x2:C2:S2, x3:C3:S3>`` plan messages: which local
    chunk to read and scale, which downstream peers will feed partials in,
    and which upstream peer receives the aggregate.
    """

    repair_id: str
    stripe_id: str
    #: Chunk id this server must read locally; None when the server is a
    #: pure aggregator/destination hosting no relevant chunk.
    chunk_id: "Optional[str]"
    #: Recipe entries for the local chunk: (lost_row, helper_row, coeff).
    entries: "Tuple[Tuple[int, int, int], ...]"
    #: Sub-chunk rows per chunk for this stripe's code.
    rows: int
    #: Modeled chunk size in bytes.
    chunk_size: float
    #: Downstream peers whose partial results this server aggregates.
    children: "Tuple[str, ...]"
    #: Upstream peer (server id) to forward the aggregate to; None at the
    #: repair destination.
    parent: "Optional[str]"
    #: Lost-chunk rows this node ships upstream (plan subtree union).
    send_rows: "FrozenSet[int]"
    #: Fraction of a chunk the upstream transfer occupies.
    send_fraction: float
    #: Fraction of the local chunk read from disk.
    read_fraction: float
    #: Pipelining factor: cut transfers into this many slices (1 = the
    #: paper's store-and-forward PPR; >1 = repair-pipelining extension).
    num_slices: int = 1


@dataclass(frozen=True)
class RawReadRequest:
    """Traditional repair's fetch: send me your raw rows for this repair."""

    repair_id: str
    stripe_id: str
    chunk_id: str
    #: Helper rows to read and ship.
    rows_needed: "FrozenSet[int]"
    rows: int
    chunk_size: float
    requester: str


@dataclass
class PartialPayload:
    """Bulk payload of a partial-result transfer: lost_row -> buffer."""

    repair_id: str
    sender: str
    buffers: "Dict[int, np.ndarray]"
    #: Which pipeline slice this payload carries (0 when unsliced).
    slice_index: int = 0


@dataclass
class RawPayload:
    """Bulk payload of a raw-rows transfer: helper_row -> buffer."""

    repair_id: str
    sender: str
    chunk_index: int
    buffers: "Dict[int, np.ndarray]"


@dataclass(frozen=True)
class Heartbeat:
    """Chunk server -> Meta-Server liveness + statistics (every 5 s)."""

    server_id: str
    time: float
    cached_chunk_ids: "FrozenSet[str]"
    active_reconstructions: int
    active_repair_destinations: int
    user_load_bytes: float
    disk_queue_delay: float
