"""Clients: normal reads and degraded reads.

A degraded read (§1, §7.1.2) is a read of a chunk that is currently
unavailable: reconstruction happens in the critical path with the *client*
as the repair site.  With PPR the client receives the final aggregate;
with traditional repair the client ingests all k chunks itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.results import RepairResult
from repro.fs.node import StorageNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


class Client(StorageNode):
    """A read client attached to the fabric (no disk, no chunks)."""

    def __init__(self, cluster: "StorageCluster", client_id: str):
        super().__init__(cluster, client_id)
        self.reads_completed = 0
        self.degraded_reads_completed = 0
        self.last_read_latency: "Optional[float]" = None

    # ------------------------------------------------------------------
    # Normal read path
    # ------------------------------------------------------------------
    def read_chunk(
        self,
        chunk_id: str,
        on_done: "Optional[Callable[[float], None]]" = None,
        strategy: str = "ppr",
    ) -> None:
        """Read a chunk; falls back to a degraded read if it is missing.

        ``on_done`` receives the end-to-end latency in seconds.
        """
        meta = self.cluster.metaserver
        start = self.sim.now

        def finish() -> None:
            latency = self.sim.now - start
            self.last_read_latency = latency
            self.reads_completed += 1
            if on_done is not None:
                on_done(latency)

        def at_metaserver() -> None:
            host = meta.locate_chunk(chunk_id)
            if host is None:
                self._degraded_read(chunk_id, start, finish, strategy)
                return
            server = self.cluster.chunk_server(host)
            stripe = meta.stripe_for_chunk(chunk_id)

            def on_disk_read() -> None:
                server.fill_cache(chunk_id)
                self.cluster.start_flow(
                    host,
                    self.node_id,
                    stripe.chunk_size,
                    lambda _flow: finish(),
                )

            def serve() -> None:
                if server.lookup_cache(chunk_id):
                    self.cluster.start_flow(
                        host,
                        self.node_id,
                        stripe.chunk_size,
                        lambda _flow: finish(),
                    )
                else:
                    server.disk.read(stripe.chunk_size, on_disk_read)

            self.cluster.send_control(host, serve)

        # Round trip to the meta-server to locate the chunk.
        self.cluster.send_control("meta", at_metaserver)

    # ------------------------------------------------------------------
    # Degraded read path
    # ------------------------------------------------------------------
    def _degraded_read(
        self,
        chunk_id: str,
        start: float,
        finish: "Callable[[], None]",
        strategy: str,
    ) -> None:
        meta = self.cluster.metaserver
        stripe = meta.stripe_for_chunk(chunk_id)
        lost_index = stripe.chunk_index(chunk_id)

        def on_repair_done(result: RepairResult) -> None:
            self.degraded_reads_completed += 1
            finish()

        # Degraded reads are scheduled with the highest priority (§6.2).
        meta.repair_manager.start_degraded_read(
            stripe=stripe,
            lost_index=lost_index,
            client_id=self.node_id,
            strategy=strategy,
            on_complete=on_repair_done,
        )

    def degraded_read(
        self,
        chunk_id: str,
        on_done: "Optional[Callable[[RepairResult], None]]" = None,
        strategy: str = "ppr",
        num_slices: int = 1,
    ) -> None:
        """Explicitly reconstruct a missing chunk at this client."""
        meta = self.cluster.metaserver
        stripe = meta.stripe_for_chunk(chunk_id)
        lost_index = stripe.chunk_index(chunk_id)

        def wrapped(result: RepairResult) -> None:
            self.degraded_reads_completed += 1
            self.last_read_latency = result.duration
            if on_done is not None:
                on_done(result)

        meta.repair_manager.start_degraded_read(
            stripe=stripe,
            lost_index=lost_index,
            client_id=self.node_id,
            strategy=strategy,
            on_complete=wrapped,
            num_slices=num_slices,
        )
