"""Chunk and stripe metadata.

A chunk carries a *real* (usually scaled-down) numpy payload used to verify
byte-correctness of every reconstruction, and a *modeled* size in bytes
used by the timing model — the trick that lets a laptop simulate 64 MB
chunk repairs while still checking the math end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.codes.base import ErasureCode
from repro.errors import ConfigurationError


@dataclass
class Chunk:
    """One stored chunk of a stripe."""

    chunk_id: str
    stripe_id: str
    index: int
    payload: np.ndarray
    size: float  # modeled bytes used by the timing model

    def __post_init__(self) -> None:
        if self.payload.dtype != np.uint8 or self.payload.ndim != 1:
            raise ConfigurationError("chunk payload must be a 1-D uint8 array")
        if self.size <= 0:
            raise ConfigurationError(f"chunk size must be > 0, got {self.size}")


@dataclass
class Stripe:
    """An erasure-coded stripe: n chunks tied together by one code."""

    stripe_id: str
    code: ErasureCode
    chunk_ids: "List[str]"
    chunk_size: float  # modeled bytes per chunk
    payload_len: int  # real payload bytes per chunk

    def __post_init__(self) -> None:
        if len(self.chunk_ids) != self.code.n:
            raise ConfigurationError(
                f"stripe needs {self.code.n} chunk ids, got {len(self.chunk_ids)}"
            )

    def chunk_index(self, chunk_id: str) -> int:
        """Position of ``chunk_id`` within the stripe."""
        try:
            return self.chunk_ids.index(chunk_id)
        except ValueError:
            raise ConfigurationError(
                f"chunk {chunk_id} not part of stripe {self.stripe_id}"
            ) from None
