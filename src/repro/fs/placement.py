"""Stripe placement with failure and upgrade domains.

The paper's m-PPR destination selection (§5) must avoid servers that
already host chunks of the stripe, servers in the same *failure domain*
(e.g. rack) and the same *upgrade domain* as surviving chunks.  This
module owns those constraints for initial placement and exposes the
eligibility filter reused by destination selection.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

import numpy as np

from repro.errors import StorageError
from repro.util.rng import make_rng


class PlacementPolicy:
    """Spread stripes across distinct failure domains where possible."""

    def __init__(
        self,
        failure_domain: "Dict[str, int]",
        upgrade_domain: "Dict[str, int]",
        rng: "np.random.Generator | int | None" = None,
    ):
        self.failure_domain = dict(failure_domain)
        self.upgrade_domain = dict(upgrade_domain)
        self.rng = make_rng(rng)

    def place_stripe(
        self, servers: "Sequence[str]", num_chunks: int
    ) -> "List[str]":
        """Pick ``num_chunks`` hosts, preferring distinct failure domains.

        Falls back to reusing domains when the cluster is smaller than the
        stripe width but never reuses a server.
        """
        candidates = list(servers)
        if len(candidates) < num_chunks:
            raise StorageError(
                f"cannot place {num_chunks} chunks on {len(candidates)} servers"
            )
        order = list(self.rng.permutation(len(candidates)))
        chosen: "List[str]" = []
        used_domains: "Set[int]" = set()
        # First pass: distinct failure domains.
        for idx in order:
            server = candidates[idx]
            domain = self.failure_domain.get(server, -1)
            if domain in used_domains:
                continue
            chosen.append(server)
            used_domains.add(domain)
            if len(chosen) == num_chunks:
                return chosen
        # Second pass: fill up regardless of domain.
        for idx in order:
            server = candidates[idx]
            if server in chosen:
                continue
            chosen.append(server)
            if len(chosen) == num_chunks:
                return chosen
        raise StorageError("placement failed")  # pragma: no cover

    def eligible_destinations(
        self,
        servers: "Iterable[str]",
        stripe_hosts: "Iterable[str]",
    ) -> "List[str]":
        """Servers allowed to become the repair site for a stripe (§5).

        Excludes current hosts and anything sharing a failure or upgrade
        domain with them.
        """
        hosts = set(stripe_hosts)
        blocked_fd = {self.failure_domain.get(h) for h in hosts}
        blocked_ud = {self.upgrade_domain.get(h) for h in hosts}
        out = []
        for server in servers:
            if server in hosts:
                continue
            if self.failure_domain.get(server) in blocked_fd:
                continue
            if self.upgrade_domain.get(server) in blocked_ud:
                continue
            out.append(server)
        return out
