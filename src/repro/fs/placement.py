"""Stripe placement: domain constraints and scatter-control strategies.

The paper's m-PPR destination selection (§5) must avoid servers that
already host chunks of the stripe, servers in the same *failure domain*
(e.g. rack) and the same *upgrade domain* as surviving chunks.  This
module owns those constraints for initial placement and exposes the
eligibility filter reused by destination selection.

Beyond the baseline random spread, it implements the *scatter-width*
family of placements (Cidon et al.'s Copysets line, the CR-SIM
``dataDistribute`` menu):

* ``random`` — :class:`PlacementPolicy`: every stripe draws a fresh
  domain-spread server set; each server ends up sharing stripes with
  nearly everyone (maximal scatter width), so nearly every
  ``m+1``-failure combination covers *some* stripe.
* ``copyset`` — :class:`CopysetPlacement`: servers are grouped into a
  small number of fixed *copysets* built from ``p = ceil(S / (n-1))``
  rack-aware permutations; stripes live entirely inside one copyset,
  capping each server's scatter width near ``S`` and shrinking the set
  of failure combinations that can lose data.
* ``pss`` — :class:`PartitionedPlacement`: the minimal-scatter extreme,
  one static partition (``p = 1``, scatter width ``n - 1``).
* ``sss`` — :class:`SpreadingPlacement`: shuffled stripe sets, the
  random-spread baseline of the Copysets paper (same distribution as
  ``random``; kept as an explicit strategy name).

``make_placement`` builds any of them by name;
:func:`scatter_width` measures what a placement actually achieved.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

import numpy as np

from repro.errors import StorageError
from repro.util.rng import make_rng


class PlacementPolicy:
    """Spread stripes across distinct failure domains where possible."""

    #: Registry name of the strategy (subclasses override).
    strategy_name = "random"

    def __init__(
        self,
        failure_domain: "Dict[str, int]",
        upgrade_domain: "Dict[str, int]",
        rng: "np.random.Generator | int | None" = None,
    ):
        self.failure_domain = dict(failure_domain)
        self.upgrade_domain = dict(upgrade_domain)
        self.rng = make_rng(rng)

    def place_stripe(
        self, servers: "Sequence[str]", num_chunks: int
    ) -> "List[str]":
        """Pick ``num_chunks`` hosts, preferring distinct failure domains.

        Falls back to reusing domains when the cluster is smaller than the
        stripe width but never reuses a server.
        """
        candidates = list(servers)
        if len(candidates) < num_chunks:
            raise StorageError(
                f"cannot place {num_chunks} chunks on {len(candidates)} servers"
            )
        order = list(self.rng.permutation(len(candidates)))
        chosen: "List[str]" = []
        used_domains: "Set[int]" = set()
        # First pass: distinct failure domains.
        for idx in order:
            server = candidates[idx]
            domain = self.failure_domain.get(server, -1)
            if domain in used_domains:
                continue
            chosen.append(server)
            used_domains.add(domain)
            if len(chosen) == num_chunks:
                return chosen
        # Second pass: fill up regardless of domain.
        for idx in order:
            server = candidates[idx]
            if server in chosen:
                continue
            chosen.append(server)
            if len(chosen) == num_chunks:
                return chosen
        raise StorageError("placement failed")  # pragma: no cover

    def eligible_destinations(
        self,
        servers: "Iterable[str]",
        stripe_hosts: "Iterable[str]",
    ) -> "List[str]":
        """Servers allowed to become the repair site for a stripe (§5).

        Excludes current hosts and anything sharing a failure or upgrade
        domain with them.
        """
        hosts = set(stripe_hosts)
        blocked_fd = {self.failure_domain.get(h) for h in hosts}
        blocked_ud = {self.upgrade_domain.get(h) for h in hosts}
        out = []
        for server in servers:
            if server in hosts:
                continue
            if self.failure_domain.get(server) in blocked_fd:
                continue
            if self.upgrade_domain.get(server) in blocked_ud:
                continue
            out.append(server)
        return out


class CopysetPlacement(PlacementPolicy):
    """Copyset placement: stripes confined to a few fixed server groups.

    Groups of ``num_chunks`` servers ("copysets") are carved out of
    ``p = ceil(scatter_width / (num_chunks - 1))`` rack-aware
    permutations of the full server population (every window of a
    permutation spans distinct failure domains whenever there are
    enough domains), and each stripe is placed onto one whole copyset.
    A server therefore shares stripes with at most ``p * (n - 1)``
    partners — the scatter width — instead of the whole cluster, which
    is the Copysets paper's lever on P(data loss): only failure
    combinations *inside* one copyset can lose data.

    Copysets are built lazily per stripe width and are stable for the
    policy's lifetime; placement onto a subset of servers (e.g. only
    the live ones) picks uniformly among fully-contained copysets and
    falls back to the domain-spread random policy when none fits.
    """

    strategy_name = "copyset"

    def __init__(
        self,
        failure_domain: "Dict[str, int]",
        upgrade_domain: "Dict[str, int]",
        rng: "np.random.Generator | int | None" = None,
        scatter_width: "Optional[int]" = None,
    ):
        super().__init__(failure_domain, upgrade_domain, rng=rng)
        if scatter_width is not None and scatter_width < 1:
            raise StorageError(
                f"scatter width must be >= 1, got {scatter_width}"
            )
        self.scatter_width = scatter_width
        self._copysets: "Dict[int, List[List[str]]]" = {}

    # ------------------------------------------------------------------
    # Copyset construction
    # ------------------------------------------------------------------
    def num_permutations(self, num_chunks: int) -> int:
        """``p = ceil(S / (n-1))``; default S is ``2 * (n-1)``."""
        if num_chunks < 2:
            return 1
        scatter = (
            self.scatter_width
            if self.scatter_width is not None
            else 2 * (num_chunks - 1)
        )
        return max(1, math.ceil(scatter / (num_chunks - 1)))

    def scatter_width_bound(self, num_chunks: int) -> int:
        """Max distinct partners any server can acquire: ``p * (n-1)``."""
        return self.num_permutations(num_chunks) * max(num_chunks - 1, 0)

    def _rack_aware_permutation(self) -> "List[str]":
        """All servers, ordered so consecutive windows span racks.

        Servers are shuffled within their failure domain, domains are
        shuffled, then dealt round-robin — position ``i`` takes the next
        unused server of domain ``order[i % len(order)]`` (skipping
        exhausted domains), so any window of ``n <= #domains`` servers
        touches ``n`` distinct domains when domain sizes are balanced.
        """
        by_domain: "Dict[int, List[str]]" = {}
        for server in sorted(self.failure_domain):
            by_domain.setdefault(self.failure_domain[server], []).append(
                server
            )
        domains = sorted(by_domain)
        order = [domains[i] for i in self.rng.permutation(len(domains))]
        for domain in order:
            group = by_domain[domain]
            by_domain[domain] = [
                group[i] for i in self.rng.permutation(len(group))
            ]
        out: "List[str]" = []
        cursor = {domain: 0 for domain in order}
        visit = 0
        while len(out) < len(self.failure_domain):
            domain = order[visit % len(order)]
            visit += 1
            index = cursor[domain]
            if index < len(by_domain[domain]):
                out.append(by_domain[domain][index])
                cursor[domain] = index + 1
        return out

    def copysets(self, num_chunks: int) -> "List[List[str]]":
        """The fixed copysets for stripes of ``num_chunks`` chunks."""
        if num_chunks < 1:
            raise StorageError("stripes need at least one chunk")
        if num_chunks > len(self.failure_domain):
            raise StorageError(
                f"cannot form copysets of {num_chunks} from "
                f"{len(self.failure_domain)} servers"
            )
        cached = self._copysets.get(num_chunks)
        if cached is None:
            cached = []
            for _ in range(self.num_permutations(num_chunks)):
                permutation = self._rack_aware_permutation()
                for start in range(
                    0, len(permutation) - num_chunks + 1, num_chunks
                ):
                    cached.append(permutation[start:start + num_chunks])
            self._copysets[num_chunks] = cached
        return cached

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place_stripe(
        self, servers: "Sequence[str]", num_chunks: int
    ) -> "List[str]":
        candidates = set(servers)
        if len(candidates) < num_chunks:
            raise StorageError(
                f"cannot place {num_chunks} chunks on "
                f"{len(candidates)} servers"
            )
        usable = [
            copyset
            for copyset in self.copysets(num_chunks)
            if candidates.issuperset(copyset)
        ]
        if not usable:
            # Degraded cluster left no whole copyset: keep data placeable
            # (availability over scatter control) via the random policy.
            return super().place_stripe(servers, num_chunks)
        return list(usable[int(self.rng.integers(len(usable)))])


class PartitionedPlacement(CopysetPlacement):
    """PSS: one static partition of the cluster (minimal scatter, S = n-1)."""

    strategy_name = "pss"

    def num_permutations(self, num_chunks: int) -> int:
        return 1


class SpreadingPlacement(PlacementPolicy):
    """SSS: shuffled stripe sets — the maximal-scatter random baseline."""

    strategy_name = "sss"


#: Registered placement strategies, by name.
_STRATEGIES: "Dict[str, Type[PlacementPolicy]]" = {
    cls.strategy_name: cls
    for cls in (
        PlacementPolicy,
        CopysetPlacement,
        PartitionedPlacement,
        SpreadingPlacement,
    )
}


def available_placements() -> "List[str]":
    """Registered placement strategy names."""
    return sorted(_STRATEGIES)


def make_placement(
    name: str,
    failure_domain: "Dict[str, int]",
    upgrade_domain: "Dict[str, int]",
    rng: "np.random.Generator | int | None" = None,
    scatter_width: "Optional[int]" = None,
) -> PlacementPolicy:
    """Build a placement strategy by registry name."""
    cls = _STRATEGIES.get(name.lower())
    if cls is None:
        raise StorageError(
            f"unknown placement {name!r}; known: {available_placements()}"
        )
    if issubclass(cls, CopysetPlacement):
        return cls(
            failure_domain, upgrade_domain, rng=rng,
            scatter_width=scatter_width,
        )
    if scatter_width is not None:
        raise StorageError(
            f"placement {name!r} does not take a scatter width"
        )
    return cls(failure_domain, upgrade_domain, rng=rng)


def scatter_width(
    stripes: "Iterable[Sequence[str]]",
) -> "Dict[str, int]":
    """Distinct co-stripe partners per server, over placed stripes.

    The quantity copyset placement bounds: how many other servers each
    server shares at least one stripe with.
    """
    partners: "Dict[str, Set[str]]" = {}
    for hosts in stripes:
        for host in hosts:
            partners.setdefault(host, set()).update(hosts)
    return {
        host: len(others - {host}) for host, others in partners.items()
    }
