"""Network topologies: who talks to whom over which links.

The paper assumes (§4.2) either a VL2-like fabric — "all servers connected
to a monolithic giant virtual switch" — or a fat-tree with ~full bisection
bandwidth.  We provide both:

* :class:`SingleSwitchTopology` — every server has an egress and an ingress
  access link into a non-blocking core.  This is the model under which
  Theorem 1's ``k·C/B`` vs ``⌈log2(k+1)⌉·C/B`` is exact.
* :class:`FatTreeTopology` — servers grouped into racks; each rack has an
  uplink/downlink pair whose capacity can be oversubscribed, letting
  experiments explore PPR when the core is *not* full-bisection.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.network import Link
from repro.util.units import Bandwidth


class Topology:
    """Base class: a set of server ids and link paths between them."""

    def __init__(self) -> None:
        self._servers: "List[str]" = []

    @property
    def servers(self) -> "List[str]":
        return list(self._servers)

    def path(self, src: str, dst: str) -> "List[Link]":
        """Ordered links a flow from ``src`` to ``dst`` traverses."""
        raise NotImplementedError

    def all_links(self) -> "List[Link]":
        raise NotImplementedError

    def _check_server(self, server: str) -> None:
        if server not in self._index:  # type: ignore[attr-defined]
            raise SimulationError(f"unknown server {server!r}")


class SingleSwitchTopology(Topology):
    """Full-duplex access links into a non-blocking core (VL2 model)."""

    def __init__(self, server_ids: "Sequence[str]", link_bandwidth: "float | str"):
        super().__init__()
        if not server_ids:
            raise ConfigurationError("topology needs at least one server")
        if len(set(server_ids)) != len(server_ids):
            raise ConfigurationError("server ids must be unique")
        bw = Bandwidth.of(link_bandwidth).bytes_per_sec
        self._servers = list(server_ids)
        self._index = {s: i for i, s in enumerate(self._servers)}
        self.egress: "Dict[str, Link]" = {
            s: Link(f"{s}:egress", bw) for s in self._servers
        }
        self.ingress: "Dict[str, Link]" = {
            s: Link(f"{s}:ingress", bw) for s in self._servers
        }

    def path(self, src: str, dst: str) -> "List[Link]":
        self._check_server(src)
        self._check_server(dst)
        if src == dst:
            # Loopback: modeled as a path through both NIC directions (the
            # memory bus is not the bottleneck we study).
            return [self.egress[src], self.ingress[dst]]
        return [self.egress[src], self.ingress[dst]]

    def all_links(self) -> "List[Link]":
        return list(self.egress.values()) + list(self.ingress.values())

    def set_bandwidth(self, bandwidth: "float | str") -> None:
        """Re-cap every access link (the paper's §7.2 ``tc`` experiment)."""
        bw = Bandwidth.of(bandwidth).bytes_per_sec
        for link in self.all_links():
            link.capacity = bw

    def set_server_bandwidth(self, server: str, bandwidth: "float | str") -> None:
        """Give one server faster/slower links (heterogeneous clusters)."""
        self._check_server(server)
        bw = Bandwidth.of(bandwidth).bytes_per_sec
        self.egress[server].capacity = bw
        self.ingress[server].capacity = bw


class FatTreeTopology(Topology):
    """Rack-structured fabric with configurable oversubscription.

    ``servers_per_rack`` servers share a rack switch whose uplink/downlink
    carry ``servers_per_rack * link_bw / oversubscription`` each.
    ``oversubscription=1`` gives full bisection (behaves like the single
    switch for rack-disjoint transfers).
    """

    def __init__(
        self,
        server_ids: "Sequence[str]",
        link_bandwidth: "float | str",
        servers_per_rack: int = 8,
        oversubscription: float = 1.0,
    ):
        super().__init__()
        if not server_ids:
            raise ConfigurationError("topology needs at least one server")
        if servers_per_rack < 1:
            raise ConfigurationError("servers_per_rack must be >= 1")
        if oversubscription < 1.0:
            raise ConfigurationError("oversubscription must be >= 1.0")
        bw = Bandwidth.of(link_bandwidth).bytes_per_sec
        self._servers = list(server_ids)
        self._index = {s: i for i, s in enumerate(self._servers)}
        self.servers_per_rack = servers_per_rack
        self.egress = {s: Link(f"{s}:egress", bw) for s in self._servers}
        self.ingress = {s: Link(f"{s}:ingress", bw) for s in self._servers}
        num_racks = -(-len(self._servers) // servers_per_rack)
        rack_bw = servers_per_rack * bw / oversubscription
        self.rack_up = [Link(f"rack{r}:up", rack_bw) for r in range(num_racks)]
        self.rack_down = [
            Link(f"rack{r}:down", rack_bw) for r in range(num_racks)
        ]

    def rack_of(self, server: str) -> int:
        self._check_server(server)
        return self._index[server] // self.servers_per_rack

    def path(self, src: str, dst: str) -> "List[Link]":
        src_rack = self.rack_of(src)
        dst_rack = self.rack_of(dst)
        if src_rack == dst_rack:
            return [self.egress[src], self.ingress[dst]]
        return [
            self.egress[src],
            self.rack_up[src_rack],
            self.rack_down[dst_rack],
            self.ingress[dst],
        ]

    def all_links(self) -> "List[Link]":
        return (
            list(self.egress.values())
            + list(self.ingress.values())
            + self.rack_up
            + self.rack_down
        )
