"""Measurement plumbing: phase breakdowns and traffic accounting.

:class:`PhaseBreakdown` reproduces the paper's Fig. 1 methodology — how
much of a reconstruction was spent in plan distribution, disk IO, network
transfer, computation, and write-back.  Because phases overlap (PPR
pipelines IO with network, §6.3), each phase records *busy intervals* and
reports both busy time and its share of the end-to-end window.

:class:`TrafficMatrix` counts bytes per (src, dst) server pair and per
link, used to reproduce the Fig. 2 / Fig. 4 transfer patterns.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

PHASES = ("plan", "disk_read", "network", "compute", "disk_write")


@dataclass
class _IntervalSet:
    """A set of [start, end) busy intervals with union-length queries."""

    intervals: "List[Tuple[float, float]]" = field(default_factory=list)

    def add(self, start: float, end: float) -> None:
        if end > start:
            self.intervals.append((start, end))

    def busy_time(self) -> float:
        """Total length of the union of intervals."""
        if not self.intervals:
            return 0.0
        merged = 0.0
        current_start, current_end = None, None
        for start, end in sorted(self.intervals):
            if current_start is None:
                current_start, current_end = start, end
                continue
            if start <= current_end:
                current_end = max(current_end, end)
            else:
                merged += current_end - current_start
                current_start, current_end = start, end
        merged += current_end - current_start  # type: ignore[operator]
        return merged


class PhaseBreakdown:
    """Per-phase busy time over one reconstruction."""

    def __init__(self) -> None:
        self._phases: "Dict[str, _IntervalSet]" = {
            name: _IntervalSet() for name in PHASES
        }
        self.start_time: float = 0.0
        self.end_time: float = 0.0

    def record(self, phase: str, start: float, end: float) -> None:
        if phase not in self._phases:
            raise KeyError(f"unknown phase {phase!r}; known: {PHASES}")
        self._phases[phase].add(start, end)

    def busy(self, phase: str) -> float:
        return self._phases[phase].busy_time()

    @property
    def total(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    def shares(self) -> "Dict[str, float]":
        """Each phase's busy time as a fraction of the end-to-end window.

        Shares can exceed 1.0 in sum when phases overlap (pipelining) —
        matching how Fig. 1's stacked "percentage of time" is measured per
        phase rather than normalized.
        """
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in PHASES}
        return {name: self.busy(name) / total for name in PHASES}

    def dominant_phase(self) -> str:
        return max(PHASES, key=self.busy)


class TrafficMatrix:
    """Bytes moved per (src, dst) pair — the Fig. 2/4 transfer pattern."""

    def __init__(self) -> None:
        self._pairs: "Dict[Tuple[str, str], float]" = defaultdict(float)

    def add(self, src: str, dst: str, nbytes: float) -> None:
        self._pairs[(src, dst)] += nbytes

    def bytes_between(self, src: str, dst: str) -> float:
        return self._pairs.get((src, dst), 0.0)

    def ingress_bytes(self, server: str) -> float:
        return sum(v for (s, d), v in self._pairs.items() if d == server)

    def egress_bytes(self, server: str) -> float:
        return sum(v for (s, d), v in self._pairs.items() if s == server)

    def max_ingress(self) -> "Tuple[str, float]":
        """The most loaded receiver — the traditional repair hotspot."""
        totals: "Dict[str, float]" = defaultdict(float)
        for (_, dst), value in self._pairs.items():
            totals[dst] += value
        if not totals:
            return ("", 0.0)
        server = max(totals, key=lambda s: totals[s])
        return (server, totals[server])

    def max_through_any_server(self) -> float:
        """Max ingress+egress over all servers (Table 1's BW/server metric)."""
        totals: "Dict[str, float]" = defaultdict(float)
        for (src, dst), value in self._pairs.items():
            totals[src] += value
            totals[dst] += value
        return max(totals.values(), default=0.0)

    def total_bytes(self) -> float:
        return sum(self._pairs.values())

    def pairs(self) -> "Dict[Tuple[str, str], float]":
        return dict(self._pairs)
