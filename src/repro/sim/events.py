"""Minimal discrete-event engine: an event heap and a virtual clock.

Callback-based rather than coroutine-based: actors (chunk servers, the
meta-server, clients) register handler methods; the engine orders them in
virtual time.  Determinism matters for reproducibility, so ties break on a
monotonically increasing sequence number.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import causal


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`.

    Each event captures the ambient causal :class:`~repro.obs.causal.
    SpanContext` at schedule time and rebinds it while the callback runs,
    so a traced repair's context flows through the virtual-time gap between
    cause (the code that scheduled) and effect (the callback) exactly like
    asyncio's contextvars copy does in live mode.  ``ctx`` is None — one
    attribute load, no other cost — whenever no repair is being traced.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "ctx")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: "Callable[..., None]",
        args: "Tuple[Any, ...]",
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.ctx = causal.current()

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); heap entry is skipped)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulation:
    """The event loop.  ``now`` is virtual seconds since simulation start."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: "List[Event]" = []
        self._seq = itertools.count()
        self._running = False
        #: Events executed so far — a plain int (no obs dependency: this
        #: is the innermost loop) that ``repro trace`` snapshots into the
        #: ``sim.events.executed`` counter after a recorded run.
        self.events_executed = 0
        #: Clock observers, called as ``fn(now)`` after every executed
        #: event.  They piggyback on the existing event stream instead of
        #: scheduling their own events, so telemetry sampling cannot
        #: perturb the heap (no extra seq numbers, no extra events,
        #: identical tie-breaking) — results with sampling on are
        #: bit-identical to results with it off.
        self._clock_observers: "List[Callable[[float], None]]" = []
        #: Optional event profiler (see :mod:`repro.obs.profiler`): when
        #: set, ``step()`` reports each executed event's callback and the
        #: virtual-time advance it accounted for.  Strictly read-only —
        #: like clock observers it cannot schedule events or touch the
        #: heap, so profiled runs stay bit-identical.  None costs one
        #: attribute load and a branch per event.
        self.profiler: "Optional[Any]" = None

    def set_profiler(self, profiler: "Optional[Any]") -> None:
        """Attach (or with None, detach) a read-only event profiler.

        ``profiler.observe_event(callback, dt)`` is called after each
        executed event with the virtual-time gap ``dt`` the event closed.
        See :class:`repro.obs.profiler.VirtualProfiler`.
        """
        self.profiler = profiler

    def add_clock_observer(self, observer: "Callable[[float], None]") -> None:
        """Call ``observer(now)`` after each executed event.

        Observers must not schedule events or mutate simulation state;
        they are read-only taps for telemetry sampling.
        """
        self._clock_observers.append(observer)

    def remove_clock_observer(
        self, observer: "Callable[[float], None]"
    ) -> None:
        """Detach a previously added clock observer (no-op if absent)."""
        try:
            self._clock_observers.remove(observer)
        except ValueError:
            pass

    def schedule(
        self, delay: float, callback: "Callable[..., None]", *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: "Callable[..., None]", *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})"
            )
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> "Optional[float]":
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when nothing is pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            previous = self.now
            self.now = event.time
            self.events_executed += 1
            if event.ctx is None:
                event.callback(*event.args)
            else:
                token = causal.activate(event.ctx)
                try:
                    event.callback(*event.args)
                finally:
                    causal.restore(token)
            profiler = self.profiler
            if profiler is not None:
                profiler.observe_event(event.callback, event.time - previous)
            for observer in self._clock_observers:
                observer(self.now)
            return True
        return False

    def run(self, until: "Optional[float]" = None) -> float:
        """Run events until the heap drains (or past ``until``).

        Returns the final clock value.  With ``until``, events scheduled at
        or before the horizon run and the clock then advances to exactly
        ``until``.
        """
        if self._running:
            raise SimulationError("simulation is not re-entrant")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_idle(self, max_events: int = 50_000_000) -> float:
        """Drain the heap with a runaway guard."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely a loop"
                )
        return self.now
