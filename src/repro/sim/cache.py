"""In-memory LRU chunk cache (§4.4).

Byte-capacity LRU keyed by chunk id, plus the usage profile (last-access
timestamps) the paper uses to prioritize repairs of hot chunks and to let
m-PPR's ``hasCache`` weight term prefer source servers that can skip the
disk read.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

from repro.util.validation import check_non_negative


class LRUCache:
    """Least-recently-used cache with a byte-capacity bound."""

    def __init__(self, capacity_bytes: float):
        self.capacity = check_non_negative("capacity_bytes", capacity_bytes)
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()
        self._bytes = 0.0
        self._last_access: "Dict[Hashable, float]" = {}
        self.hits = 0
        self.misses = 0

    @property
    def used_bytes(self) -> float:
        return self._bytes

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: Hashable) -> bool:
        """Non-mutating membership check (no LRU bump, no hit counting)."""
        return key in self._entries

    def access(self, key: Hashable, now: float = 0.0) -> bool:
        """Look up ``key``; bump recency and record the usage profile.

        Returns True on hit.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self._last_access[key] = now
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Hashable, size: float, now: float = 0.0) -> "List[Hashable]":
        """Insert (or refresh) an entry; returns any evicted keys."""
        check_non_negative("size", size)
        if size > self.capacity:
            return []  # does not fit at all; leave the cache unchanged
        if key in self._entries:
            self._bytes -= self._entries.pop(key)
        self._entries[key] = size
        self._bytes += size
        self._last_access[key] = now
        evicted: "List[Hashable]" = []
        while self._bytes > self.capacity and self._entries:
            old_key, old_size = self._entries.popitem(last=False)
            if old_key == key:
                # Shouldn't happen (size was checked), but stay safe.
                self._entries[key] = old_size
                break
            self._bytes -= old_size
            self._last_access.pop(old_key, None)
            evicted.append(old_key)
        return evicted

    def evict(self, key: Hashable) -> bool:
        """Explicitly drop an entry (e.g. chunk deleted)."""
        if key not in self._entries:
            return False
        self._bytes -= self._entries.pop(key)
        self._last_access.pop(key, None)
        return True

    def last_access(self, key: Hashable) -> "Optional[float]":
        """Usage-profile timestamp, or None if never cached."""
        return self._last_access.get(key)

    def hottest(self, limit: int = 10) -> "List[Tuple[Hashable, float]]":
        """Most recently used entries, newest first (the usage profile)."""
        items = sorted(
            ((k, self._last_access.get(k, 0.0)) for k in self._entries),
            key=lambda kv: kv[1],
            reverse=True,
        )
        return items[:limit]

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use, in [0, 1] (0.0 when capacity 0)."""
        return self._bytes / self.capacity if self.capacity else 0.0
