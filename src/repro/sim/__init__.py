"""Flow-level discrete-event cluster simulator.

The substitution for the paper's OpenStack testbeds.  Components:

* :mod:`repro.sim.events` — event heap and simulation clock.
* :mod:`repro.sim.network` — links and flows with max-min fair bandwidth
  sharing (progressive filling), recomputed on every flow arrival and
  departure.  This is what reproduces the paper's core observation: k
  concurrent flows into one ingress link each get B/k.
* :mod:`repro.sim.topology` — single-switch (VL2-like) and fat-tree
  (oversubscribable) fabrics, the two architectures §4.2 assumes.
* :mod:`repro.sim.disk` — FIFO disks (Eq. 1's ``C/B_I`` term with queueing).
* :mod:`repro.sim.compute` — GF compute-time model calibrated against this
  library's real numpy kernels.
* :mod:`repro.sim.cache` — the in-memory LRU chunk cache of §4.4.
* :mod:`repro.sim.metrics` — phase timers and per-link byte counters.
"""

from repro.sim.events import Event, Simulation
from repro.sim.network import Flow, FlowNetwork, Link
from repro.sim.topology import FatTreeTopology, SingleSwitchTopology, Topology
from repro.sim.disk import Disk
from repro.sim.compute import ComputeModel
from repro.sim.cache import LRUCache
from repro.sim.metrics import PhaseBreakdown, TrafficMatrix

__all__ = [
    "Event",
    "Simulation",
    "Flow",
    "FlowNetwork",
    "Link",
    "Topology",
    "SingleSwitchTopology",
    "FatTreeTopology",
    "Disk",
    "ComputeModel",
    "LRUCache",
    "PhaseBreakdown",
    "TrafficMatrix",
]
