"""Computation-time model for reconstruction math.

The paper's prototype uses Jerasure/GF-Complete (SIMD C); reconstruction
compute is a small but measurable slice of total time (Fig 1, Fig 7f).
Defaults below are Jerasure-class throughputs so the simulated regime
matches the paper's ("network dominates, compute visible but small");
:data:`NUMPY_PROFILE` carries this machine's measured pure-numpy kernel
throughputs for experiments that want self-consistency with the real
executor instead.

Modeled costs:

* scalar-multiply a buffer by a decoding coefficient — ``bytes / mul_bw``
* XOR two buffers — ``bytes / xor_bw``
* build the decoding matrix — ``inversion_coeff * k^3`` (Gauss-Jordan)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ComputeModel:
    """Throughput constants used to turn byte counts into virtual seconds."""

    #: GF(2^8) scalar-multiply throughput, bytes/second.
    mul_bandwidth: float = 1.2e9
    #: XOR (GF add) throughput, bytes/second.
    xor_bandwidth: float = 4.0e9
    #: Seconds per k^3 for the decoding-matrix inversion at the RM.
    inversion_coeff: float = 5.0e-8
    #: Fixed overhead per partial-operation dispatch (task setup).
    dispatch_overhead: float = 1.0e-4

    def __post_init__(self) -> None:
        check_positive("mul_bandwidth", self.mul_bandwidth)
        check_positive("xor_bandwidth", self.xor_bandwidth)
        check_non_negative("inversion_coeff", self.inversion_coeff)
        check_non_negative("dispatch_overhead", self.dispatch_overhead)

    def multiply_time(self, nbytes: float) -> float:
        """Time to scale ``nbytes`` by one decoding coefficient."""
        return self.dispatch_overhead + nbytes / self.mul_bandwidth

    def xor_time(self, nbytes: float) -> float:
        """Time to XOR-accumulate an ``nbytes`` buffer."""
        return self.dispatch_overhead + nbytes / self.xor_bandwidth

    def inversion_time(self, k: int) -> float:
        """Time to build the decoding matrix (k x k Gauss-Jordan)."""
        return self.inversion_coeff * k * k * k

    def traditional_decode_time(self, k: int, chunk_bytes: float) -> float:
        """Serial repair-site computation: k multiplies + k XORs (Table 2)."""
        return k * self.multiply_time(chunk_bytes) + k * self.xor_time(
            chunk_bytes
        )

    def ppr_critical_path_time(self, k: int, chunk_bytes: float) -> float:
        """PPR critical path: 1 multiply + ceil(log2(k+1)) XORs (Table 2)."""
        import math

        steps = math.ceil(math.log2(k + 1))
        return self.multiply_time(chunk_bytes) + steps * self.xor_time(
            chunk_bytes
        )


#: This machine's measured pure-numpy throughputs (see benchmarks/fig7f):
#: table-gather GF multiply ~0.09 GB/s, bitwise XOR ~3 GB/s.
NUMPY_PROFILE = ComputeModel(mul_bandwidth=9.0e7, xor_bandwidth=3.0e9)

#: Jerasure/GF-Complete-class SIMD throughputs (paper's prototype regime).
JERASURE_PROFILE = ComputeModel()
