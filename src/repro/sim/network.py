"""Flow-level network with max-min fair bandwidth sharing.

Every bulk transfer is a :class:`Flow` along a path of :class:`Link`
objects.  Whenever the set of active flows changes, rates are recomputed
with the classic *progressive filling* algorithm: repeatedly find the most
contended link, freeze its flows at the equal share of its residual
capacity, remove it, repeat.  Between changes flows progress linearly, so
the engine only needs one completion event at a time.

This is the standard fluid approximation used by datacenter-scale
simulators; it captures exactly the effect the paper builds on — k
concurrent repair flows into one ingress link get B/k each, while PPR's
per-step link-disjoint transfers each get the full B.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Dict, Optional, Sequence, Set

from repro import obs
from repro.obs import causal
from repro.errors import SimulationError
from repro.sim.events import Event, Simulation
from repro.util.units import Bandwidth

#: Residual-byte tolerance below which a flow counts as finished.
_EPSILON_BYTES = 1e-6

#: Residual-time tolerance: if draining the remainder would take less than
#: this, the flow counts as finished.  Guards against float underflow when
#: ``now + dt == now`` (a sub-femtosecond remainder would otherwise loop
#: the completion timer forever without advancing the clock).
_EPSILON_SECONDS = 1e-9


class Link:
    """A unidirectional link with fixed capacity in bytes/second.

    Optional *incast* modeling: real TCP fan-ins suffer goodput collapse
    when many synchronized senders overflow a switch port's buffer (the
    regime behind the paper's Fig 7d, where traditional repair measured
    ~3.5x below the fluid-flow bound).  With ``incast_threshold`` set, a
    link carrying ``n > threshold`` concurrent flows delivers only
    ``capacity / (1 + incast_gamma * (n - threshold))``.
    """

    __slots__ = (
        "name",
        "capacity",
        "flows",
        "bytes_carried",
        "class_bytes",
        "incast_threshold",
        "incast_gamma",
    )

    def __init__(
        self,
        name: str,
        capacity: "float | str",
        incast_threshold: "int | None" = None,
        incast_gamma: float = 0.0,
    ):
        self.name = name
        self.capacity = Bandwidth.of(capacity).bytes_per_sec
        self.flows: "Set[Flow]" = set()
        self.bytes_carried = 0.0
        #: Per-traffic-class share of ``bytes_carried`` (QoS accounting).
        self.class_bytes: "Dict[str, float]" = {}
        self.incast_threshold = incast_threshold
        self.incast_gamma = incast_gamma

    def effective_capacity(self) -> float:
        """Deliverable goodput given the current number of flows."""
        if self.incast_threshold is None or self.incast_gamma <= 0.0:
            return self.capacity
        excess = len(self.flows) - self.incast_threshold
        if excess <= 0:
            return self.capacity
        return self.capacity / (1.0 + self.incast_gamma * excess)

    def utilization(self) -> float:
        """Fraction of effective capacity carrying flows right now.

        Sum of the current max-min fair flow rates over the deliverable
        goodput; a read-only tap for telemetry sampling.  In [0, 1] up to
        float rounding (0.0 on an idle or zero-capacity link).
        """
        capacity = self.effective_capacity()
        if capacity <= 0.0 or not self.flows:
            return 0.0
        return sum(flow.rate for flow in self.flows) / capacity

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity:.3g}B/s {len(self.flows)} flows>"


class Flow:
    """A bulk transfer in progress."""

    __slots__ = (
        "flow_id",
        "path",
        "size",
        "remaining",
        "rate",
        "meta",
        "on_complete",
        "start_time",
        "finish_time",
    )

    def __init__(
        self,
        flow_id: int,
        path: "Sequence[Link]",
        size: float,
        meta: "Dict[str, Any]",
        on_complete: "Optional[Callable[[Flow], None]]",
        start_time: float,
    ):
        self.flow_id = flow_id
        self.path = tuple(path)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.meta = meta
        self.on_complete = on_complete
        self.start_time = start_time
        self.finish_time: "Optional[float]" = None

    @property
    def traffic_class(self) -> str:
        """QoS class ("foreground" unless tagged otherwise via meta)."""
        return str(self.meta.get("traffic_class", "foreground"))

    @property
    def duration(self) -> float:
        """Transfer duration; only valid after completion."""
        if self.finish_time is None:
            raise SimulationError("flow has not finished yet")
        return self.finish_time - self.start_time

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.flow_id} {self.remaining:.3g}/{self.size:.3g}B "
            f"@{self.rate:.3g}B/s>"
        )


class FlowNetwork:
    """Tracks active flows and keeps their rates max-min fair."""

    def __init__(self, sim: Simulation):
        self.sim = sim
        self.active: "Set[Flow]" = set()
        self._flow_ids = itertools.count()
        self._last_settle = 0.0
        self._completion_event: "Optional[Event]" = None
        self.completed_flows = 0
        self.total_bytes_moved = 0.0
        #: Network-wide per-traffic-class byte totals (QoS accounting).
        self.class_bytes_moved: "Dict[str, float]" = {}
        #: Optional admission controller (see repro.qos.admission): when
        #: set, paced-class flows wait out their token-bucket delay in a
        #: pending set before touching any link.  Their ``start_time``
        #: stays at enqueue, so admission queueing counts as latency.
        self.admission: "Optional[Any]" = None
        self._pending: "Set[Flow]" = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        path: "Sequence[Link]",
        size: float,
        on_complete: "Optional[Callable[[Flow], None]]" = None,
        **meta: Any,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes along ``path``.

        ``on_complete(flow)`` fires (as a simulation event) when the last
        byte arrives.  Zero-size flows complete after one zero-delay event.
        """
        if size < 0:
            raise SimulationError(f"flow size must be >= 0, got {size}")
        if not path:
            raise SimulationError("flow path must contain at least one link")
        flow = Flow(
            next(self._flow_ids),
            path,
            size,
            meta,
            on_complete,
            self.sim.now,
        )
        if size <= _EPSILON_BYTES:
            self.sim.schedule(0.0, self._finish_flow, flow)
            return flow
        if self.admission is not None:
            wait = self.admission.delay(
                flow.path[0].name, flow.traffic_class, size, self.sim.now
            )
            if wait > 0.0:
                self._pending.add(flow)
                self.sim.schedule(wait, self._admit, flow)
                return flow
        self._attach(flow)
        return flow

    def _attach(self, flow: Flow) -> None:
        self._settle()
        self.active.add(flow)
        for link in flow.path:
            link.flows.add(flow)
        self._reallocate()

    def _admit(self, flow: Flow) -> None:
        """A paced flow's token-bucket delay elapsed; enter the fabric."""
        if flow not in self._pending:
            return  # cancelled while queued
        self._pending.discard(flow)
        self._attach(flow)

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a transfer (e.g. helper died); no completion fires."""
        if flow in self._pending:
            self._pending.discard(flow)
            return
        if flow not in self.active:
            return
        self._settle()
        self._detach(flow)
        self._reallocate()

    def cancel_flows_touching(self, node_id: str) -> int:
        """Abort every active flow with ``src`` or ``dst`` == ``node_id``.

        Used when a server crashes: its in-flight transfers die with it
        (admission-queued flows included).  Returns the number of flows
        cancelled.
        """

        def touches(flow: Flow) -> bool:
            return (
                flow.meta.get("src") == node_id
                or flow.meta.get("dst") == node_id
            )

        cancelled = 0
        for flow in [f for f in self._pending if touches(f)]:
            self._pending.discard(flow)
            cancelled += 1
        victims = [flow for flow in self.active if touches(flow)]
        if not victims:
            return cancelled
        self._settle()
        for flow in victims:
            self._detach(flow)
        self._reallocate()
        return cancelled + len(victims)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self.active.discard(flow)
        for link in flow.path:
            link.flows.discard(flow)

    def _settle(self) -> None:
        """Advance every active flow's progress to ``sim.now``."""
        elapsed = self.sim.now - self._last_settle
        if elapsed > 0:
            # Deterministic order: the active set hashes by object id, so
            # iterating it directly would make float-accumulation order
            # (and hence byte counters) depend on heap layout.
            for flow in sorted(self.active, key=lambda f: f.flow_id):
                moved = flow.rate * elapsed
                flow.remaining = max(0.0, flow.remaining - moved)
                cls = flow.traffic_class
                for link in flow.path:
                    link.bytes_carried += moved
                    link.class_bytes[cls] = (
                        link.class_bytes.get(cls, 0.0) + moved
                    )
                self.total_bytes_moved += moved
                self.class_bytes_moved[cls] = (
                    self.class_bytes_moved.get(cls, 0.0) + moved
                )
        self._last_settle = self.sim.now

    def _reallocate(self) -> None:
        """Progressive filling: recompute max-min fair rates, reschedule."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self.active:
            return

        # Iteration order is pinned (flow id, link name) everywhere ties
        # or float accumulation could otherwise follow set/hash order:
        # rerunning the same scenario must replay bit-identically even
        # within one process (the QoS fingerprint tests rely on it).
        unfrozen: "Set[Flow]" = set(self.active)
        residual: "Dict[Link, float]" = {}
        link_unfrozen: "Dict[Link, int]" = {}
        link_set: "Set[Link]" = set()
        for flow in self.active:
            flow.rate = 0.0
            for link in flow.path:
                link_set.add(link)
        links = sorted(link_set, key=lambda ln: ln.name)
        for link in links:
            residual[link] = link.effective_capacity()
            link_unfrozen[link] = sum(1 for f in link.flows if f in unfrozen)

        while unfrozen:
            # The bottleneck link is the one with the smallest equal share.
            best_link: "Optional[Link]" = None
            best_share = math.inf
            for link in links:
                count = link_unfrozen[link]
                if count <= 0:
                    continue
                share = residual[link] / count
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            # Freeze every unfrozen flow crossing the bottleneck.
            for flow in sorted(best_link.flows, key=lambda f: f.flow_id):
                if flow not in unfrozen:
                    continue
                flow.rate = best_share
                unfrozen.discard(flow)
                for link in flow.path:
                    residual[link] -= best_share
                    link_unfrozen[link] -= 1
            links.remove(best_link)

        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        soonest: "Optional[Flow]" = None
        soonest_dt = math.inf
        for flow in sorted(self.active, key=lambda f: f.flow_id):
            if flow.rate <= 0:
                raise SimulationError(
                    f"active flow has zero rate: {flow!r}"
                )
            dt = flow.remaining / flow.rate
            if dt < soonest_dt:
                soonest_dt = dt
                soonest = flow
        if soonest is None:
            return
        self._completion_event = self.sim.schedule(
            soonest_dt, self._on_completion_timer, soonest
        )

    def _on_completion_timer(self, flow: Flow) -> None:
        self._completion_event = None
        self._settle()
        residual_time = (
            flow.remaining / flow.rate if flow.rate > 0 else math.inf
        )
        if flow.remaining > _EPSILON_BYTES and residual_time > _EPSILON_SECONDS:
            # Numeric slack; re-arm.
            self._reallocate()
            return
        self._detach(flow)
        self._finish_flow(flow)
        self._reallocate()

    def _finish_flow(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.remaining = 0.0
        self.completed_flows += 1
        tracer = obs.tracer()
        if tracer is not None:
            dst = str(flow.meta.get("dst", ""))
            extra = {}
            ctx = causal.current()
            if ctx is not None:
                extra["trace_id"] = ctx.trace_id
            tracer.record_span(
                "sim.net.flow",
                flow.start_time,
                flow.finish_time,
                node=dst,
                category="sim.net",
                nbytes=flow.size,
                src=str(flow.meta.get("src", "")),
                **extra,
            )
            obs.registry().counter("sim.net.flows").inc()
            obs.registry().counter("sim.net.bytes").inc(flow.size)
        if flow.on_complete is not None:
            flow.on_complete(flow)
