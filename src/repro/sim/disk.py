"""FIFO disk model.

Requests queue in arrival order and each takes ``size / bandwidth`` plus a
fixed seek latency — the ``C / B_I`` term of the paper's Eq. (1), with
queueing when multiple reconstructions hit the same spindle (the resource
m-PPR's weights try to avoid overloading).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro import obs
from repro.obs import causal
from repro.sim.events import Simulation
from repro.util.units import Bandwidth
from repro.util.validation import check_non_negative


class Disk:
    """A single FIFO storage device."""

    def __init__(
        self,
        sim: Simulation,
        bandwidth: "float | str" = "100MB/s",
        seek_latency: float = 0.004,
    ):
        self.sim = sim
        self.bandwidth = Bandwidth.of(bandwidth).bytes_per_sec
        self.seek_latency = check_non_negative("seek_latency", seek_latency)
        self._busy_until = 0.0
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.num_requests = 0
        #: Finish times of requests not yet past, pruned lazily by
        #: :attr:`queue_depth` — tracking depth without scheduling
        #: completion events keeps telemetry off the event heap.
        self._finish_times: "Deque[float]" = deque()
        #: Who owns this spindle, for span/metric labels ("" = anonymous).
        self.owner = ""

    def _enqueue(
        self,
        size: float,
        callback: "Optional[Callable[[], None]]",
        op: str = "io",
    ) -> float:
        start = max(self.sim.now, self._busy_until)
        finish = start + self.seek_latency + size / self.bandwidth
        self._busy_until = finish
        self.num_requests += 1
        self._finish_times.append(finish)
        tracer = obs.tracer()
        if tracer is not None:
            wait = start - self.sim.now
            obs.registry().histogram(
                "sim.disk.queue_wait", node=self.owner
            ).observe(wait)
            extra = {}
            ctx = causal.current()
            if ctx is not None:
                extra["trace_id"] = ctx.trace_id
            tracer.record_span(
                f"sim.disk.{op}",
                start,
                finish,
                node=self.owner,
                category="sim.disk",
                nbytes=size,
                queue_wait=wait,
                **extra,
            )
        if callback is not None:
            self.sim.schedule_at(finish, callback)
        return finish

    def read(
        self, size: float, callback: "Optional[Callable[[], None]]" = None
    ) -> float:
        """Queue a read of ``size`` bytes; returns its completion time."""
        check_non_negative("size", size)
        self.bytes_read += size
        return self._enqueue(size, callback, op="read")

    def write(
        self, size: float, callback: "Optional[Callable[[], None]]" = None
    ) -> float:
        """Queue a write of ``size`` bytes; returns its completion time."""
        check_non_negative("size", size)
        self.bytes_written += size
        return self._enqueue(size, callback, op="write")

    @property
    def queue_delay(self) -> float:
        """How long a request issued now would wait before starting."""
        return max(0.0, self._busy_until - self.sim.now)

    @property
    def queue_depth(self) -> int:
        """Requests queued or in service right now (FIFO depth)."""
        finish_times = self._finish_times
        now = self.sim.now
        while finish_times and finish_times[0] <= now:
            finish_times.popleft()
        return len(finish_times)
