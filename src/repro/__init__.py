"""repro — Partial-Parallel-Repair (PPR) for erasure-coded storage.

A full reproduction of *"Partial-Parallel-Repair (PPR): A Distributed
Technique for Repairing Erasure Coded Storage"* (Mitra, Panta, Ra, Bagchi —
EuroSys 2016): from-scratch GF(2^8) erasure codes (Reed-Solomon, Cauchy-RS,
Azure LRC, Rotated RS), the PPR binomial-reduction repair protocol, the
m-PPR multi-repair scheduler, and a flow-level discrete-event cluster
simulator with a QFS-like storage system on top.

Quickstart::

    from repro import ReedSolomonCode, StorageCluster, run_single_repair

    cluster = StorageCluster.smallsite()
    stripe = cluster.write_stripe(ReedSolomonCode(6, 3), "64MiB")
    result = run_single_repair(cluster, stripe, lost_index=0, strategy="ppr")
    print(result.summary())
"""

from repro.codes import (
    CauchyReedSolomonCode,
    ErasureCode,
    LocalReconstructionCode,
    ReedSolomonCode,
    RepairRecipe,
    ReplicationCode,
    RotatedReedSolomonCode,
    available_codes,
    make_code,
)
from repro.repair import (
    build_plan,
    build_ppr_plan,
    build_staggered_plan,
    build_star_plan,
    execute_plan,
    theory,
)
from repro.fs import ClusterConfig, FileSystem, StorageCluster
from repro.core import (
    MPPRConfig,
    RepairManager,
    RepairResult,
    run_degraded_read,
    run_single_repair,
)
from repro.sim import ComputeModel

__version__ = "1.0.0"

__all__ = [
    "ErasureCode",
    "ReedSolomonCode",
    "CauchyReedSolomonCode",
    "LocalReconstructionCode",
    "RotatedReedSolomonCode",
    "ReplicationCode",
    "RepairRecipe",
    "available_codes",
    "make_code",
    "build_plan",
    "build_star_plan",
    "build_staggered_plan",
    "build_ppr_plan",
    "execute_plan",
    "theory",
    "StorageCluster",
    "ClusterConfig",
    "FileSystem",
    "RepairResult",
    "RepairManager",
    "MPPRConfig",
    "run_single_repair",
    "run_degraded_read",
    "ComputeModel",
    "__version__",
]
