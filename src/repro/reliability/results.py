"""Aggregating Monte Carlo trials into MTTDL, nines, and exposure.

One :class:`TrialResult` per independent trial; a
:class:`ReliabilityReport` folds them into the durability quantities the
paper's §1–§2 argue repair speed buys:

* **MTTDL** — total simulated time over loss events (Poisson CI), or the
  mean time-to-first-loss in ``until_loss`` mode (normal CI).
* **P(data loss)/year** — the loss-rate exponentiated into an annual
  probability, with the rate CI propagated through.
* **Availability nines** — stripe-hours readable over stripe-hours
  total, where a stripe is unreadable whenever more than ``m`` chunks
  are failed or transiently down.
* **Exposure integral** — chunk-hours spent degraded (the window-of-
  vulnerability area PPR's faster repairs shrink).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.render import Table, time_series_chart
from repro.reliability.lifetimes import HOURS_PER_YEAR

#: 95% two-sided normal quantile, the CI width used throughout.
Z95 = 1.96

#: 95% one-sided Poisson upper bound on the rate when zero events were
#: observed ("rule of three").
ZERO_EVENT_UPPER = 3.0


@dataclass
class TrialResult:
    """Raw outcome of one Monte Carlo trial."""

    trial: int
    #: Simulated horizon actually covered, hours.
    hours: float
    num_stripes: int
    #: Stripes that crossed into the LOST state.
    losses: int
    #: Loss *events*: causing failures that lost >= 1 stripe.  Copyset
    #: placement lowers the event rate while raising per-event stripe
    #: losses, so the two loss metrics must be tracked separately.
    loss_events: int = 0
    first_loss_hours: "Optional[float]" = None
    exposure_chunk_hours: float = 0.0
    unavailable_stripe_hours: float = 0.0
    disk_failures: int = 0
    machine_downs: int = 0
    bursts: int = 0
    repairs_completed: int = 0
    repair_hours: float = 0.0
    #: Bytes moved by all repairs (the code's γ per repaired chunk).
    repair_traffic_bytes: float = 0.0
    max_backlog: int = 0
    #: (hours, queued + active repairs) samples, decimated.
    backlog: "List[Tuple[float, int]]" = field(default_factory=list)

    @property
    def stripe_hours(self) -> float:
        return self.hours * self.num_stripes


@dataclass
class ReliabilityReport:
    """All trials of one (code, scheme) configuration, aggregated."""

    code_name: str
    scheme: str
    m: int
    per_chunk_repair_hours: float
    until_loss: bool
    trials: "List[TrialResult]"
    placement: str = "random"

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def total_hours(self) -> float:
        return sum(t.hours for t in self.trials)

    @property
    def total_stripe_years(self) -> float:
        return sum(t.stripe_hours for t in self.trials) / HOURS_PER_YEAR

    @property
    def total_losses(self) -> int:
        return sum(t.losses for t in self.trials)

    @property
    def total_loss_events(self) -> int:
        return sum(t.loss_events for t in self.trials)

    @property
    def total_repair_traffic_bytes(self) -> float:
        return sum(t.repair_traffic_bytes for t in self.trials)

    # ------------------------------------------------------------------
    # MTTDL
    # ------------------------------------------------------------------
    def mttdl_hours(self) -> "Tuple[float, float, float]":
        """``(estimate, ci_low, ci_high)`` in hours.

        Horizon mode treats losses as a Poisson process over the total
        simulated time; zero observed losses yield the rule-of-three
        *lower bound* ``T / 3`` with an unbounded upper CI.  Until-loss
        mode averages the per-trial absorption times directly.
        """
        if self.until_loss:
            times = [
                t.first_loss_hours
                for t in self.trials
                if t.first_loss_hours is not None
            ]
            if not times:
                return math.inf, 0.0, math.inf
            mean = statistics.mean(times)
            half = (
                Z95 * statistics.stdev(times) / math.sqrt(len(times))
                if len(times) > 1
                else math.inf
            )
            return mean, max(mean - half, 0.0), mean + half
        total = self.total_hours
        events = self.total_losses
        if events == 0:
            return total / ZERO_EVENT_UPPER, total / ZERO_EVENT_UPPER, math.inf
        low_events = max(events - Z95 * math.sqrt(events), 1e-9)
        high_events = events + Z95 * math.sqrt(events)
        return total / events, total / high_events, total / low_events

    def mttdl_years(self) -> "Tuple[float, float, float]":
        est, low, high = self.mttdl_hours()
        return (
            est / HOURS_PER_YEAR,
            low / HOURS_PER_YEAR,
            high / HOURS_PER_YEAR,
        )

    # ------------------------------------------------------------------
    # Annual loss probability
    # ------------------------------------------------------------------
    def loss_rate_per_year(self) -> "Tuple[float, float, float]":
        """Loss events per simulated year, with 95% CI."""
        years = self.total_hours / HOURS_PER_YEAR
        if years <= 0:
            return 0.0, 0.0, 0.0
        events = self.total_losses
        if events == 0:
            return 0.0, 0.0, ZERO_EVENT_UPPER / years
        half = Z95 * math.sqrt(events)
        return (
            events / years,
            max(events - half, 0.0) / years,
            (events + half) / years,
        )

    def p_loss_per_year(self) -> "Tuple[float, float, float]":
        """P(at least one loss event in a year), rate CI propagated."""
        rate, low, high = self.loss_rate_per_year()
        expm1 = lambda r: -math.expm1(-r)  # noqa: E731 - tiny local alias
        return expm1(rate), expm1(low), expm1(high)

    def loss_event_rate_per_year(self) -> "Tuple[float, float, float]":
        """Loss *events* per simulated year, with 95% CI.

        The stripe-count rate above measures blast radius; this one
        measures how *often* a failure combination lands on data — the
        rate copyset placement actually shrinks (fewer disk combinations
        cover a stripe), at the price of losing more stripes per event.
        """
        years = self.total_hours / HOURS_PER_YEAR
        if years <= 0:
            return 0.0, 0.0, 0.0
        events = self.total_loss_events
        if events == 0:
            return 0.0, 0.0, ZERO_EVENT_UPPER / years
        half = Z95 * math.sqrt(events)
        return (
            events / years,
            max(events - half, 0.0) / years,
            (events + half) / years,
        )

    def p_loss_event_per_year(self) -> "Tuple[float, float, float]":
        """P(at least one loss *event* in a year), rate CI propagated."""
        rate, low, high = self.loss_event_rate_per_year()
        expm1 = lambda r: -math.expm1(-r)  # noqa: E731 - tiny local alias
        return expm1(rate), expm1(low), expm1(high)

    def repair_traffic_bytes_per_stripe_year(self) -> float:
        """Mean repair bytes moved per stripe-year (the γ lever MSR/MBR
        pull and the redundancy matrix compares across codes)."""
        years = self.total_stripe_years
        if years <= 0:
            return 0.0
        return self.total_repair_traffic_bytes / years

    def trial_loss_fraction(self) -> float:
        """Fraction of trials that lost any stripe."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.losses) / len(self.trials)

    # ------------------------------------------------------------------
    # Availability and exposure
    # ------------------------------------------------------------------
    def unavailability(self) -> float:
        """Unavailable stripe-hours over total stripe-hours."""
        total = sum(t.stripe_hours for t in self.trials)
        if total <= 0:
            return 0.0
        return sum(t.unavailable_stripe_hours for t in self.trials) / total

    def availability_nines(self) -> float:
        """``-log10(unavailability)``, capped at 12 when flawless."""
        unavail = self.unavailability()
        if unavail <= 0:
            return 12.0
        return min(-math.log10(unavail), 12.0)

    def exposure_chunk_hours_per_stripe_year(self) -> float:
        """Mean chunk-hours degraded per stripe-year (vulnerability area)."""
        years = self.total_stripe_years
        if years <= 0:
            return 0.0
        return sum(t.exposure_chunk_hours for t in self.trials) / years

    def mean_backlog_peak(self) -> float:
        if not self.trials:
            return 0.0
        return statistics.mean(t.max_backlog for t in self.trials)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary_rows(self) -> "Dict[str, object]":
        """Flat numeric summary (the CLI table / benchmark row source)."""
        mttdl, mttdl_lo, mttdl_hi = self.mttdl_years()
        p_loss, p_lo, p_hi = self.p_loss_per_year()
        return {
            "code": self.code_name,
            "scheme": self.scheme,
            "placement": self.placement,
            "trials": len(self.trials),
            "stripe_years": round(self.total_stripe_years, 3),
            "losses": self.total_losses,
            "loss_events": self.total_loss_events,
            "mttdl_years": mttdl,
            "mttdl_ci_low_years": mttdl_lo,
            "mttdl_ci_high_years": mttdl_hi,
            "p_loss_per_year": p_loss,
            "p_loss_ci_low": p_lo,
            "p_loss_ci_high": p_hi,
            "p_loss_event_per_year": self.p_loss_event_per_year()[0],
            "repair_traffic_bytes_per_stripe_year": (
                self.repair_traffic_bytes_per_stripe_year()
            ),
            "availability_nines": self.availability_nines(),
            "exposure_chunk_hours_per_stripe_year": (
                self.exposure_chunk_hours_per_stripe_year()
            ),
            "disk_failures": sum(t.disk_failures for t in self.trials),
            "repairs_completed": sum(
                t.repairs_completed for t in self.trials
            ),
            "mean_backlog_peak": self.mean_backlog_peak(),
            "per_chunk_repair_hours": self.per_chunk_repair_hours,
        }

    def render(self, backlog_chart: bool = False) -> str:
        """Human-readable report for the ``repro reliability`` CLI."""
        mttdl, mttdl_lo, mttdl_hi = self.mttdl_years()
        p_loss, p_lo, p_hi = self.p_loss_per_year()
        hi_text = "inf" if math.isinf(mttdl_hi) else f"{mttdl_hi:.3g}"
        table = Table(
            ["metric", "value"],
            title=(
                f"Durability: {self.code_name} / {self.scheme} / "
                f"{self.placement} ({len(self.trials)} trials, "
                f"{self.total_stripe_years:,.0f} stripe-years)"
            ),
        )
        bound = " (lower bound)" if self.total_losses == 0 else ""
        table.add_row(
            "MTTDL",
            f"{mttdl:.4g} years{bound} "
            f"[95% CI {mttdl_lo:.3g} – {hi_text}]",
        )
        table.add_row(
            "P(data loss)/year",
            f"{p_loss:.3g} [95% CI {p_lo:.3g} – {p_hi:.3g}]",
        )
        table.add_row(
            "lost stripes",
            f"{self.total_losses} (over {self.total_loss_events} loss "
            f"events)",
        )
        table.add_row(
            "P(loss event)/year",
            f"{self.p_loss_event_per_year()[0]:.3g}",
        )
        table.add_row(
            "trials with loss", f"{self.trial_loss_fraction():.0%}"
        )
        table.add_row(
            "availability", f"{self.availability_nines():.2f} nines"
        )
        table.add_row(
            "exposure",
            f"{self.exposure_chunk_hours_per_stripe_year():.4g} "
            f"chunk-hours degraded / stripe-year",
        )
        table.add_row(
            "repairs",
            f"{sum(t.repairs_completed for t in self.trials)} completed, "
            f"per-chunk {self.per_chunk_repair_hours * 3600:.1f}s "
            f"({self.scheme})",
        )
        table.add_row(
            "repair backlog", f"peak {self.mean_backlog_peak():.1f} disks "
            f"(mean over trials)"
        )
        out = [table.render()]
        if backlog_chart:
            samples = next(
                (t.backlog for t in self.trials if t.backlog), []
            )
            if samples:
                out.append(
                    time_series_chart(
                        [(h * 3600.0, depth) for h, depth in samples],
                        title="repair queue depth (trial 0)",
                    )
                )
        return "\n".join(out)
