"""The long-horizon Monte Carlo durability engine.

A genuinely different simulation regime from :mod:`repro.sim`: instead
of flow-level transfers over seconds, this engine walks *years* of
coarse-grained component events — disk deaths, machine reboots, rack
bursts, repair completions — over a population of stripes tracked as
numpy counters (:mod:`repro.reliability.stripes`).  Crucially it does
**not** re-simulate individual repairs; per-chunk repair durations come
from the calibrated closed forms in :mod:`repro.repair.theory` (Eq. 1
for traditional star repair, its Theorem-1/Table-2 PPR rewrite for
``ppr``/``mppr``), so the second-scale models feed the year-scale one.

Repairs drain through a bandwidth-limited queue: at most
``repair_slots`` disk reconstructions run concurrently, each slowed by a
scheme-dependent contention factor when slots are shared (PPR spreads
its traffic across helpers — Table 1's per-server bandwidth column — so
concurrent PPR repairs collide less than star repairs; m-PPR's weighted
source/destination selection barely collides at all), and disks holding
chunks of CRITICAL stripes jump the queue.

Event kinds, all on one heap keyed ``(hours, seq)``:

* ``disk_fail`` — permanent loss of a disk and every chunk on it.
* ``detect`` — the meta-server notices (15 min default) and enqueues.
* ``repair_done`` — a queued disk reconstruction finished; counters
  roll back, the replacement disk draws a fresh lifetime.
* ``transient`` / ``machine_up`` — a machine drops and returns; its
  chunks are *unavailable* but not lost.
* ``burst`` — a rack-level shared-cause outage: every machine in the
  rack drops at once, each recovering on its own schedule (the model
  :class:`repro.workloads.failures.FailureTrace` injects at
  seconds-scale, replayed here at years-scale).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.redundancy.models import make_cost_model
from repro.reliability.hierarchy import Hierarchy
from repro.reliability.lifetimes import (
    HOURS_PER_YEAR,
    LifetimeModel,
    make_lifetime,
)
from repro.reliability.results import ReliabilityReport, TrialResult
from repro.reliability.stripes import StripeMap
from repro.util.units import Bandwidth, parse_size

#: Repair schemes the engine can price.  ``star`` is the paper's name
#: for traditional funnel repair (kept as an explicit axis label for the
#: redundancy matrix); ``staggered`` spreads the same transfers over
#: time so concurrent repairs collide less; ``chain`` pipelines the
#: repair in ``num_slices`` slices along a helper chain (the streamed
#: sliced-repair data path at years-scale).
SCHEMES = ("traditional", "star", "staggered", "chain", "ppr", "mppr")

#: Fractional slowdown per extra concurrently-active repair.  Calibrated
#: against Table 1 (max per-server bandwidth: star repair funnels k
#: chunks into one link, PPR at most ceil(log2 k) into any link) and
#: Fig 8 (m-PPR's weighted scheduling keeps concurrent repairs off each
#: other's helpers almost entirely).  Staggered repair serializes the
#: same funnel into time-offset phases (fewer simultaneous collisions
#: than star, more than PPR's tree); chain repair gives every transfer
#: its own link, colliding about as little as m-PPR's weighted spread.
SCHEME_CONTENTION: "Dict[str, float]" = {
    "traditional": 0.50,
    "star": 0.50,
    "staggered": 0.35,
    "chain": 0.15,
    "ppr": 0.20,
    "mppr": 0.05,
}

#: Queue priorities: critical stripes first.
_PRIORITY_CRITICAL, _PRIORITY_NORMAL = 0, 1


@dataclass(frozen=True)
class ReliabilityConfig:
    """Everything one Monte Carlo run needs, with datacenter defaults."""

    code: str = "rs(6,3)"
    scheme: str = "ppr"
    #: Stripe placement regime (:data:`repro.reliability.stripes.
    #: PLACEMENTS`): ``random``/``sss`` spread maximally; ``copyset``/
    #: ``pss`` confine stripes to fixed disk groups.
    placement: str = "random"
    #: Target scatter width S for ``copyset`` (None -> 2*(n-1)).
    scatter_width: "Optional[int]" = None
    num_stripes: int = 10_000
    chunk_size: "int | str" = "64MiB"
    hierarchy: Hierarchy = field(default_factory=Hierarchy)
    #: Permanent disk failures (MTTF); accelerated default so a 10-year
    #: horizon exercises the loss machinery without 1e6 trials.
    disk_lifetime: "str | LifetimeModel" = "exp:3y"
    #: Transient machine unavailability (Rashmi et al.: ~50 events/day
    #: on a multi-thousand-node cluster ~= O(10)/machine-year).
    machine_transient_rate_per_year: float = 12.0
    machine_downtime: "str | LifetimeModel" = "exp:0.25h"
    #: Rack-correlated bursts (power/switch loss), per rack-year.
    burst_rate_per_rack_per_year: float = 0.5
    burst_downtime: "str | LifetimeModel" = "exp:1h"
    #: Failure-detection delay before a repair is enqueued (Google's
    #: 15-minute delayed-repair policy).
    detection_delay_hours: float = 0.25
    net_bandwidth: "float | str" = "1Gbps"
    io_bandwidth: "float | str" = "120MB/s"
    #: Jerasure-class SIMD decode throughput (~4 GB/s).
    compute_seconds_per_byte: float = 2.5e-10
    #: Concurrent disk reconstructions (the cluster's repair bandwidth).
    repair_slots: int = 8
    #: Pipeline depth for the ``chain`` scheme (ignored elsewhere).
    num_slices: int = 8
    #: Override the scheme's contention factor (None = scheme default).
    contention: "Optional[float]" = None
    #: "deterministic" uses the closed-form duration as-is;
    #: "exponential" samples an exponential with that mean — the mode
    #: that realizes the Markov chain of repro.reliability.markov.
    repair_jitter: str = "deterministic"
    #: Override the per-chunk repair duration entirely (validation runs).
    per_chunk_repair_hours: "Optional[float]" = None
    horizon_years: float = 10.0
    trials: int = 10
    #: Stop each trial at its first loss and report the absorption time
    #: (Markov-validation mode) instead of running the full horizon.
    until_loss: bool = False
    seed: int = 2016
    max_backlog_samples: int = 2048

    def validate(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; pick from {SCHEMES}"
            )
        if self.repair_jitter not in ("deterministic", "exponential"):
            raise ConfigurationError(
                f"repair_jitter must be deterministic or exponential, "
                f"got {self.repair_jitter!r}"
            )
        if self.num_stripes < 1 or self.trials < 1:
            raise ConfigurationError("need >= 1 stripe and >= 1 trial")
        if self.repair_slots < 1:
            raise ConfigurationError("need >= 1 repair slot")
        if self.num_slices < 1:
            raise ConfigurationError("need >= 1 slice")
        if self.horizon_years <= 0:
            raise ConfigurationError("horizon must be positive")


class ReliabilityEngine:
    """Runs ``config.trials`` independent trials and aggregates them."""

    def __init__(self, config: "Optional[ReliabilityConfig]" = None, **kw):
        config = config or ReliabilityConfig()
        if kw:
            config = replace(config, **kw)
        config.validate()
        self.config = config
        #: The repair-cost model: a wrapped byte-level code for
        #: implemented families, a cut-set-bound model for MSR/MBR.
        #: Exposes the same shape surface (n, k, fault_tolerance, name)
        #: the engine historically read off the ErasureCode.
        self.code = make_cost_model(config.code)
        if self.code.num_parity < 1:
            raise ConfigurationError(
                f"{self.code.name} has no parity; durability is zero"
            )
        self.m = self.code.fault_tolerance
        self.disk_lifetime = make_lifetime(config.disk_lifetime)
        self.machine_downtime = make_lifetime(config.machine_downtime)
        self.burst_downtime = make_lifetime(config.burst_downtime)
        self.contention = (
            config.contention
            if config.contention is not None
            else SCHEME_CONTENTION[config.scheme]
        )

    # ------------------------------------------------------------------
    # Repair pricing: the second-scale models feed the year-scale engine
    # ------------------------------------------------------------------
    def per_chunk_repair_hours(self) -> float:
        """Hours to reconstruct one chunk under the configured scheme.

        The cost model's repair-case mixture priced by the generalized
        Eq. (1) — for RS this reduces bit-identically to
        :func:`repro.repair.theory.reconstruction_time_estimate`
        (traditional/star) and its Theorem-1 PPR rewrite (ppr/mppr).
        """
        cfg = self.config
        if cfg.per_chunk_repair_hours is not None:
            return cfg.per_chunk_repair_hours
        chunk = float(parse_size(cfg.chunk_size))
        net = Bandwidth.of(cfg.net_bandwidth).bytes_per_sec
        io = Bandwidth.of(cfg.io_bandwidth).bytes_per_sec
        seconds = self.code.mean_repair_seconds(
            cfg.scheme, chunk, io, net, cfg.compute_seconds_per_byte,
            num_slices=cfg.num_slices,
        )
        return seconds / 3600.0

    def repair_traffic_chunks_for(self, failed: int) -> float:
        """Chunk-units moved to repair one chunk of an ``failed``-loss
        stripe (the code's γ for single losses, its conventional
        ``(k + f - 1)/f`` share under concurrent losses)."""
        return self.code.multi_failure_traffic(failed) / max(failed, 1)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> ReliabilityReport:
        """All trials, deterministically derived from ``config.seed``."""
        cfg = self.config
        children = np.random.SeedSequence(cfg.seed).spawn(cfg.trials)
        trials: "List[TrialResult]" = []
        for index, child in enumerate(children):
            with obs.maybe_span(
                "reliability.trial", category="reliability",
                trial=index, scheme=cfg.scheme,
            ):
                trials.append(
                    self._run_trial(np.random.default_rng(child), index)
                )
        report = ReliabilityReport(
            code_name=self.code.name,
            scheme=cfg.scheme,
            m=self.m,
            per_chunk_repair_hours=self.per_chunk_repair_hours(),
            until_loss=cfg.until_loss,
            trials=trials,
            placement=cfg.placement,
        )
        self._export_metrics(report)
        return report

    def _export_metrics(self, report: ReliabilityReport) -> None:
        """Batch the run's totals into the process-wide obs registry.

        One update per run (not per event), so `repro trace prom` and the
        Prometheus exposition path see reliability.* series without the
        event loop paying per-event instrumentation costs.
        """
        reg = obs.registry()
        labels = {"scheme": report.scheme, "code": report.code_name}
        reg.counter("reliability.trials", **labels).inc(len(report.trials))
        reg.counter("reliability.losses", **labels).inc(report.total_losses)
        reg.counter("reliability.disk_failures", **labels).inc(
            sum(t.disk_failures for t in report.trials)
        )
        reg.counter("reliability.repairs_completed", **labels).inc(
            sum(t.repairs_completed for t in report.trials)
        )
        reg.gauge("reliability.stripe_years", **labels).set(
            report.total_stripe_years
        )
        reg.gauge("reliability.availability_nines", **labels).set(
            report.availability_nines()
        )
        mttdl_years = report.mttdl_years()[0]
        if mttdl_years != float("inf"):
            reg.gauge("reliability.mttdl_years", **labels).set(mttdl_years)

    # ------------------------------------------------------------------
    # One trial
    # ------------------------------------------------------------------
    def _run_trial(
        self, rng: np.random.Generator, trial_index: int
    ) -> TrialResult:
        cfg = self.config
        tree = cfg.hierarchy
        stripe_map = StripeMap.build(
            tree, self.code.n, cfg.num_stripes, rng,
            placement=cfg.placement, scatter_width=cfg.scatter_width,
        )
        by_disk = [
            stripe_map.stripes_on_disk(d) for d in range(tree.num_disks)
        ]
        machine_of_disk = tree.machine_of_disk()

        m = self.m
        horizon = cfg.horizon_years * HOURS_PER_YEAR
        t_chunk = self.per_chunk_repair_hours()
        chunk_bytes = float(parse_size(cfg.chunk_size))
        # Chunk-units moved per repaired chunk, by the stripe's current
        # failure count (index f; f = 0 is padding).
        traffic_by_failed = np.array(
            [0.0] + [
                self.repair_traffic_chunks_for(f) for f in range(1, m + 1)
            ]
        )

        # Mutable per-stripe counters.
        failed = np.zeros(cfg.num_stripes, dtype=np.int16)
        down = np.zeros(cfg.num_stripes, dtype=np.int16)
        lost = np.zeros(cfg.num_stripes, dtype=bool)

        # Component state.
        disk_alive = np.ones(tree.num_disks, dtype=bool)
        machine_down: "Dict[int, List[int]]" = {}  # machine -> counted disks

        # Piecewise-constant aggregates and their integrals.
        state = _TrialState()

        # Event heap and repair queue.
        seq = itertools.count()
        heap: "List[Tuple[float, int, str, int]]" = []

        def push(time_hours: float, kind: str, arg: int) -> None:
            heapq.heappush(heap, (time_hours, next(seq), kind, arg))

        repair_queue: "List[Tuple[int, int, int]]" = []  # (prio, seq, disk)
        queue_priority: "Dict[int, int]" = {}  # disk -> freshest priority
        repairing: "Dict[int, float]" = {}  # disk -> started hours
        result = TrialResult(
            trial=trial_index, hours=0.0, num_stripes=cfg.num_stripes,
            losses=0,
        )
        backlog_stride = 1

        # ---------------- aggregate bookkeeping helpers ----------------
        def apply_delta(stripes: np.ndarray, which: np.ndarray,
                        delta: int) -> np.ndarray:
            """Shift failed/down counters on not-lost stripes; track the
            unavailable-stripe crossing count.  Returns affected rows."""
            idx = stripes[~lost[stripes]]
            if idx.size == 0:
                return idx
            before = (failed[idx] + down[idx]) > m
            which[idx] += delta
            after = (failed[idx] + down[idx]) > m
            state.unavailable += int(after.sum()) - int(before.sum())
            if which is failed:
                state.failed_chunks += delta * int(idx.size)
            return idx

        def advance(now: float) -> None:
            dt = now - state.clock
            if dt > 0:
                result.exposure_chunk_hours += state.failed_chunks * dt
                result.unavailable_stripe_hours += (
                    (state.unavailable + state.lost) * dt
                )
                state.clock = now

        def sample_backlog(now: float) -> None:
            nonlocal backlog_stride
            depth = len(queue_priority) + len(repairing)
            result.max_backlog = max(result.max_backlog, depth)
            state.backlog_tick += 1
            if state.backlog_tick % backlog_stride:
                return
            result.backlog.append((now, depth))
            if len(result.backlog) > cfg.max_backlog_samples:
                result.backlog = result.backlog[::2]
                backlog_stride *= 2

        # ---------------- repair queue ----------------
        def enqueue_repair(now: float, disk: int) -> None:
            if disk in repairing or not heap_guard(disk):
                return
            priority = disk_priority(disk)
            queue_priority[disk] = priority
            heapq.heappush(repair_queue, (priority, next(seq), disk))
            sample_backlog(now)
            dispatch(now)

        def heap_guard(disk: int) -> bool:
            # A disk revived by a completed repair needs no new job.
            return not disk_alive[disk]

        def disk_priority(disk: int) -> int:
            idx = by_disk[disk]
            idx = idx[~lost[idx]]
            if idx.size and bool((failed[idx] >= m).any()):
                return _PRIORITY_CRITICAL
            return _PRIORITY_NORMAL

        def escalate(stripes: np.ndarray) -> None:
            """Newly-critical stripes bump their failed disks' queue
            entries to the critical priority (stale entries are skipped
            at pop time)."""
            for stripe in stripes.tolist():
                for disk in stripe_map.disk_of[stripe].tolist():
                    if (
                        disk in queue_priority
                        and queue_priority[disk] != _PRIORITY_CRITICAL
                    ):
                        queue_priority[disk] = _PRIORITY_CRITICAL
                        heapq.heappush(
                            repair_queue,
                            (_PRIORITY_CRITICAL, next(seq), disk),
                        )

        def dispatch(now: float) -> None:
            while len(repairing) < cfg.repair_slots and repair_queue:
                priority, _, disk = heapq.heappop(repair_queue)
                if queue_priority.get(disk) != priority:
                    continue  # stale entry (escalated or already running)
                del queue_priority[disk]
                idx = by_disk[disk]
                live = idx[~lost[idx]]
                chunks = int(live.size)
                counts = np.clip(failed[live], 0, m)
                result.repair_traffic_bytes += float(
                    traffic_by_failed[counts].sum() * chunk_bytes
                )
                active_before = len(repairing)
                base = max(chunks, 1) * t_chunk
                duration = base * (1.0 + self.contention * active_before)
                if cfg.repair_jitter == "exponential":
                    duration = float(rng.exponential(duration))
                repairing[disk] = now
                push(now + duration, "repair_done", disk)
                sample_backlog(now)

        # ---------------- machine availability ----------------
        def machine_down_event(now: float, machine: int,
                               downtime_model: LifetimeModel) -> None:
            if machine in machine_down:
                return
            counted: "List[int]" = []
            for disk in tree.disks_of_machine(machine).tolist():
                if disk_alive[disk]:
                    apply_delta(by_disk[disk], down, +1)
                    counted.append(disk)
            machine_down[machine] = counted
            result.machine_downs += 1
            push(now + downtime_model.sample(rng), "machine_up", machine)

        # ---------------- seeding the processes ----------------
        for disk in range(tree.num_disks):
            push(self.disk_lifetime.sample(rng), "disk_fail", disk)
        transient_rate = cfg.machine_transient_rate_per_year / HOURS_PER_YEAR
        if transient_rate > 0:
            for machine in range(tree.num_machines):
                push(
                    float(rng.exponential(1.0 / transient_rate)),
                    "transient", machine,
                )
        burst_rate = cfg.burst_rate_per_rack_per_year / HOURS_PER_YEAR
        if burst_rate > 0:
            for rack in range(tree.racks):
                push(
                    float(rng.exponential(1.0 / burst_rate)),
                    "burst", rack,
                )

        # ---------------- the event loop ----------------
        stop_at = horizon
        while heap:
            now, _, kind, arg = heapq.heappop(heap)
            if now >= stop_at:
                break
            advance(now)

            if kind == "disk_fail":
                disk = arg
                if not disk_alive[disk]:
                    continue
                disk_alive[disk] = False
                result.disk_failures += 1
                machine = int(machine_of_disk[disk])
                counted = machine_down.get(machine)
                if counted is not None and disk in counted:
                    # The chunks just became *failed*; stop also counting
                    # them as transiently down (no double exposure).
                    counted.remove(disk)
                    apply_delta(by_disk[disk], down, -1)
                idx = apply_delta(by_disk[disk], failed, +1)
                newly_lost = idx[failed[idx] > m]
                if newly_lost.size:
                    lost[newly_lost] = True
                    state.lost += int(newly_lost.size)
                    state.unavailable -= int(newly_lost.size)
                    state.failed_chunks -= int(failed[newly_lost].sum())
                    result.losses += int(newly_lost.size)
                    # One *event* per causing failure, however many
                    # stripes it takes out — the quantity copyset
                    # placement trades per-event blast radius against.
                    result.loss_events += 1
                    if result.first_loss_hours is None:
                        result.first_loss_hours = now
                    if cfg.until_loss:
                        stop_at = now
                        break
                newly_critical = idx[failed[idx] == m]
                if newly_critical.size:
                    escalate(newly_critical)
                push(now + cfg.detection_delay_hours, "detect", disk)

            elif kind == "detect":
                enqueue_repair(now, arg)

            elif kind == "repair_done":
                disk = arg
                started = repairing.pop(disk)
                result.repairs_completed += 1
                result.repair_hours += now - started
                apply_delta(by_disk[disk], failed, -1)
                disk_alive[disk] = True
                push(
                    now + self.disk_lifetime.sample(rng), "disk_fail", disk
                )
                sample_backlog(now)
                dispatch(now)

            elif kind == "transient":
                machine = arg
                machine_down_event(now, machine, self.machine_downtime)
                push(
                    now + float(rng.exponential(1.0 / transient_rate)),
                    "transient", machine,
                )

            elif kind == "machine_up":
                machine = arg
                for disk in machine_down.pop(machine, []):
                    apply_delta(by_disk[disk], down, -1)

            elif kind == "burst":
                rack = arg
                result.bursts += 1
                for machine in tree.machines_of_rack(rack).tolist():
                    machine_down_event(now, machine, self.burst_downtime)
                push(
                    now + float(rng.exponential(1.0 / burst_rate)),
                    "burst", rack,
                )

        advance(stop_at if not heap or not cfg.until_loss else stop_at)
        result.hours = stop_at
        return result


@dataclass
class _TrialState:
    """Piecewise-constant aggregates between events."""

    clock: float = 0.0
    #: Failed chunks over not-lost stripes (exposure integrand).
    failed_chunks: int = 0
    #: Not-lost stripes with failed + down > m (availability integrand).
    unavailable: int = 0
    #: Stripes in the absorbing LOST state (always unavailable).
    lost: int = 0
    backlog_tick: int = 0
