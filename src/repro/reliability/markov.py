"""Closed-form Markov-chain MTTDL for MDS codes under exponential rates.

The classic birth–death reliability chain for one RS(k, m) stripe of
``n = k + m`` chunks: state ``i`` means ``i`` chunks are failed, failures
arrive at rate ``(n - i) * lam`` (every surviving chunk fails
independently), repairs complete at rate ``i * mu`` (every failed chunk
repairs independently) or ``mu`` (one repair at a time), and state
``m + 1`` is absorbing data loss.  The engine's exponential-lifetime /
exponential-repair configuration realizes exactly this chain, which is
what the validation test in ``tests/unit/test_reliability_markov.py``
(and the note in ``docs/RELIABILITY.md``) leans on.

The expected absorption time from state 0 solves the standard first-step
system::

    (lam_i + mu_i) * E_i = 1 + lam_i * E_{i+1} + mu_i * E_{i-1}

with ``E_{m+1} = 0``; we solve the tridiagonal system directly rather
than unrolling the (numerically fragile) product formula.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def markov_mttdl(
    n: int,
    m: int,
    failure_rate: float,
    repair_rate: float,
    parallel_repairs: bool = True,
) -> float:
    """Expected hours to data loss for one stripe, from all-healthy.

    ``failure_rate`` and ``repair_rate`` are per-chunk rates in 1/hours.
    ``parallel_repairs=True`` repairs every failed chunk concurrently
    (rate ``i * mu`` in state ``i``) — the regime of a cluster with ample
    repair slots; ``False`` models a single repair server (rate ``mu``).
    """
    if n < 2 or not 0 < m < n:
        raise ConfigurationError(f"need n >= 2 and 0 < m < n, got ({n}, {m})")
    if failure_rate <= 0 or repair_rate <= 0:
        raise ConfigurationError("rates must be positive")
    states = m + 1  # transient states 0..m; m+1 absorbs
    lam = np.array(
        [(n - i) * failure_rate for i in range(states)], dtype=float
    )
    mu = np.array(
        [
            (i * repair_rate if parallel_repairs else repair_rate)
            if i > 0
            else 0.0
            for i in range(states)
        ],
        dtype=float,
    )
    # (lam_i + mu_i) E_i - lam_i E_{i+1} - mu_i E_{i-1} = 1
    matrix = np.zeros((states, states))
    for i in range(states):
        matrix[i, i] = lam[i] + mu[i]
        if i + 1 < states:
            matrix[i, i + 1] = -lam[i]
        if i > 0:
            matrix[i, i - 1] = -mu[i]
    expected = np.linalg.solve(matrix, np.ones(states))
    return float(expected[0])


def raid1_mttdl(failure_rate: float, repair_rate: float) -> float:
    """The textbook 2-disk mirror formula, as an independent cross-check.

    ``MTTDL = (3*lam + mu) / (2*lam^2)`` — equals
    :func:`markov_mttdl` with ``n=2, m=1`` (either repair discipline;
    with one failed chunk they coincide).
    """
    lam, mu = failure_rate, repair_rate
    return (3.0 * lam + mu) / (2.0 * lam * lam)
