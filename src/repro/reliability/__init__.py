"""Long-horizon Monte Carlo durability: MTTDL, nines, and exposure.

The package turns PPR's second-scale repair speedups (measured by
:mod:`repro.sim` and :mod:`repro.live`, predicted by
:mod:`repro.repair.theory`) into the year-scale durability quantities
operators actually buy disks for — see ``docs/RELIABILITY.md``.
"""

from repro.reliability.engine import (
    SCHEME_CONTENTION,
    SCHEMES,
    ReliabilityConfig,
    ReliabilityEngine,
)
from repro.reliability.hierarchy import Hierarchy
from repro.reliability.lifetimes import (
    HOURS_PER_YEAR,
    ExponentialLifetime,
    LifetimeModel,
    WeibullLifetime,
    make_lifetime,
)
from repro.reliability.markov import markov_mttdl, raid1_mttdl
from repro.reliability.results import ReliabilityReport, TrialResult
from repro.reliability.stripes import (
    CRITICAL,
    DEGRADED,
    HEALTHY,
    LOST,
    PLACEMENTS,
    STATE_NAMES,
    StripeMap,
    classify,
)

__all__ = [
    "CRITICAL",
    "DEGRADED",
    "HEALTHY",
    "HOURS_PER_YEAR",
    "LOST",
    "PLACEMENTS",
    "SCHEMES",
    "SCHEME_CONTENTION",
    "STATE_NAMES",
    "ExponentialLifetime",
    "Hierarchy",
    "LifetimeModel",
    "ReliabilityConfig",
    "ReliabilityEngine",
    "ReliabilityReport",
    "StripeMap",
    "TrialResult",
    "WeibullLifetime",
    "classify",
    "make_lifetime",
    "markov_mttdl",
    "raid1_mttdl",
]
