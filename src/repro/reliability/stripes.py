"""Per-stripe erasure state at population scale.

The reliability engine tracks *millions* of stripes over *years*, so a
stripe is not an object — it is a row index into flat numpy arrays.
:class:`StripeMap` owns the static placement geometry (which disk holds
chunk ``j`` of stripe ``s``) and the derived inverse index (which
(stripe, chunk) pairs live on disk ``d``); the engine owns the mutable
failure counters and classifies each stripe into the four-state ladder
used throughout the reporting layer::

    HEALTHY  — every chunk present
    DEGRADED — 1..m-1 chunks lost (repairable, exposed)
    CRITICAL — exactly m chunks lost (one more failure is data loss)
    LOST     — more than m chunks lost (unrecoverable)

Placement is rack-aware and vectorized: each stripe's ``n`` chunks land
in distinct racks whenever the site has ``>= n`` racks (cycling through
racks with distinct machine/disk slots otherwise), the same constraint
:class:`repro.fs.placement.PlacementPolicy` enforces server-by-server in
the flow-level simulator — see ``verify_placement`` and its unit tests
for the cross-check.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.hierarchy import Hierarchy
from repro.util.rng import make_rng

#: Placement modes :meth:`StripeMap.build` understands.  ``random`` and
#: ``sss`` are the maximal-scatter spread (the seed behavior); ``copyset``
#: confines stripes to ``p = ceil(S/(n-1))`` permutations' worth of fixed
#: disk groups; ``pss`` is the single-partition extreme (``p = 1``).
#: Mirrors :func:`repro.fs.placement.available_placements`.
PLACEMENTS = ("random", "copyset", "pss", "sss")

#: Stripe state codes (ordered by severity).
HEALTHY, DEGRADED, CRITICAL, LOST = 0, 1, 2, 3

STATE_NAMES = {
    HEALTHY: "healthy",
    DEGRADED: "degraded",
    CRITICAL: "critical",
    LOST: "lost",
}


def classify(failed_counts: np.ndarray, m: int) -> np.ndarray:
    """State code per stripe from its count of failed chunks."""
    failed = np.asarray(failed_counts)
    states = np.full(failed.shape, HEALTHY, dtype=np.int8)
    states[failed >= 1] = DEGRADED
    states[failed == m] = CRITICAL
    states[failed > m] = LOST
    return states


class StripeMap:
    """Static placement of ``num_stripes`` × ``n`` chunks onto disks."""

    def __init__(self, disk_of: np.ndarray, hierarchy: Hierarchy):
        disk_of = np.asarray(disk_of, dtype=np.int64)
        if disk_of.ndim != 2:
            raise ConfigurationError(
                f"disk_of must be (stripes, n), got shape {disk_of.shape}"
            )
        if disk_of.size and (
            disk_of.min() < 0 or disk_of.max() >= hierarchy.num_disks
        ):
            raise ConfigurationError("disk index out of range for hierarchy")
        self.disk_of = disk_of
        self.hierarchy = hierarchy
        self._by_disk: "List[np.ndarray] | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        hierarchy: Hierarchy,
        n: int,
        num_stripes: int,
        rng: "np.random.Generator | int | None" = None,
        placement: str = "random",
        scatter_width: "Optional[int]" = None,
    ) -> "StripeMap":
        """Rack-aware placement at population scale, fully vectorized.

        ``placement`` selects the scatter regime (:data:`PLACEMENTS`):

        * ``random`` / ``sss`` — each stripe draws a random rack order
          and takes the first ``n`` (cycling when the site has fewer
          than ``n`` racks); within each rack visit it takes a distinct
          machine/disk slot.  Distinct racks per stripe fall out
          whenever ``racks >= n``, matching the failure-domain pass of
          ``PlacementPolicy.place_stripe``; with fewer racks, domains
          repeat but disks never do — the same fallback the policy
          applies on small clusters.
        * ``copyset`` / ``pss`` — stripes land on whole *copysets*:
          fixed disk groups chopped out of rack-aware permutations of
          the site (``ceil(S/(n-1))`` permutations for ``copyset``,
          with ``scatter_width`` S defaulting to ``2*(n-1)``; exactly
          one for ``pss``), the population-scale mirror of
          :class:`repro.fs.placement.CopysetPlacement`.
        """
        if n < 1:
            raise ConfigurationError("stripes need at least one chunk")
        if num_stripes < 1:
            raise ConfigurationError("need at least one stripe")
        slots_per_rack = (
            hierarchy.machines_per_rack * hierarchy.disks_per_machine
        )
        visits_per_rack = -(-n // hierarchy.racks)  # ceil
        if visits_per_rack > slots_per_rack:
            raise ConfigurationError(
                f"cannot place {n} chunks on {hierarchy.num_disks} disks "
                f"in {hierarchy.racks} racks without reusing a disk"
            )
        if placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {placement!r}; pick from {PLACEMENTS}"
            )
        rng = make_rng(rng)
        if placement in ("copyset", "pss"):
            return cls._build_copyset(
                hierarchy, n, num_stripes, rng,
                scatter_width=scatter_width,
                permutations=None if placement == "copyset" else 1,
            )
        racks = hierarchy.racks
        # Random rack order per stripe; column i uses rack order[i % racks]
        # on its (i // racks)-th visit.
        order = np.argsort(
            rng.random((num_stripes, racks)), axis=1, kind="stable"
        )
        columns = np.arange(n)
        rack_pick = order[:, columns % racks]
        # Distinct slot within the rack per visit: a random base slot,
        # advanced by one per repeat visit (mod slots) so revisits of the
        # same rack never collide on a machine/disk.
        base = rng.integers(0, slots_per_rack, size=(num_stripes, racks))
        slot = (base[:, columns % racks] + columns // racks) % slots_per_rack
        machine = rack_pick * hierarchy.machines_per_rack + slot // (
            hierarchy.disks_per_machine
        )
        disk = machine * hierarchy.disks_per_machine + (
            slot % hierarchy.disks_per_machine
        )
        return cls(disk, hierarchy)

    @classmethod
    def _build_copyset(
        cls,
        hierarchy: Hierarchy,
        n: int,
        num_stripes: int,
        rng: np.random.Generator,
        scatter_width: "Optional[int]" = None,
        permutations: "Optional[int]" = None,
    ) -> "StripeMap":
        """Copyset/PSS placement: stripes confined to fixed disk groups.

        Each permutation deals disks rack-by-rack (a shuffled rack
        order, a shuffled slot order within every rack), so every
        aligned window of ``n <= racks`` consecutive disks spans ``n``
        distinct racks; windows become the copysets.  With ``p``
        permutations a disk joins ``<= p`` copysets, capping its
        scatter width at ``p * (n - 1)``.
        """
        if scatter_width is not None and scatter_width < 1:
            raise ConfigurationError(
                f"scatter width must be >= 1, got {scatter_width}"
            )
        if permutations is None:
            scatter = (
                scatter_width if scatter_width is not None
                else 2 * max(n - 1, 1)
            )
            permutations = max(1, math.ceil(scatter / max(n - 1, 1)))
        racks = hierarchy.racks
        slots_per_rack = (
            hierarchy.machines_per_rack * hierarchy.disks_per_machine
        )
        copysets: "List[np.ndarray]" = []
        for _ in range(permutations):
            # Shuffled rack order; independently shuffled slots per rack.
            rack_order = rng.permutation(racks)
            slot_order = np.argsort(
                rng.random((racks, slots_per_rack)), axis=1, kind="stable"
            )
            # Deal round-robin: position i visits rack_order[i % racks]
            # for the (i // racks)-th time.
            positions = np.arange(racks * slots_per_rack)
            rack = rack_order[positions % racks]
            slot = slot_order[rack, positions // racks]
            machine = rack * hierarchy.machines_per_rack + slot // (
                hierarchy.disks_per_machine
            )
            disks = machine * hierarchy.disks_per_machine + (
                slot % hierarchy.disks_per_machine
            )
            usable = (len(disks) // n) * n
            copysets.extend(disks[:usable].reshape(-1, n))
        if not copysets:
            raise ConfigurationError(
                f"cannot form copysets of {n} disks from "
                f"{hierarchy.num_disks}"
            )
        groups = np.asarray(copysets)
        pick = rng.integers(0, len(groups), size=num_stripes)
        return cls(groups[pick], hierarchy)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_stripes(self) -> int:
        return self.disk_of.shape[0]

    @property
    def n(self) -> int:
        return self.disk_of.shape[1]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def stripes_on_disk(self, disk: int) -> np.ndarray:
        """Stripe indices with a chunk on ``disk`` (sorted, no repeats)."""
        return self._group_by_disk()[disk]

    def chunks_per_disk(self) -> np.ndarray:
        """``(num_disks,)`` chunk count on each disk."""
        return np.bincount(
            self.disk_of.ravel(), minlength=self.hierarchy.num_disks
        )

    def racks_of_stripe(self, stripe: int) -> np.ndarray:
        """Rack index of each chunk of ``stripe``."""
        return self.hierarchy.rack_of_disk()[self.disk_of[stripe]]

    def scatter_width(self) -> np.ndarray:
        """``(num_disks,)`` distinct co-stripe partners per disk.

        The quantity copyset placement bounds (``<= p * (n - 1)``) and
        random placement maximizes — the population-scale counterpart
        of :func:`repro.fs.placement.scatter_width`.  Disks holding no
        chunks report zero.
        """
        if self.disk_of.size == 0:
            return np.zeros(self.hierarchy.num_disks, dtype=np.int64)
        # Distinct stripe rows give distinct partner sets; dedup first
        # (copyset populations collapse to few distinct rows).
        rows = np.unique(np.sort(self.disk_of, axis=1), axis=0)
        partners: "List[set]" = [
            set() for _ in range(self.hierarchy.num_disks)
        ]
        for row in rows:
            members = row.tolist()
            for disk in members:
                partners[disk].update(members)
        return np.array(
            [
                len(p) - 1 if p else 0
                for p in partners
            ],
            dtype=np.int64,
        )

    def _group_by_disk(self) -> "List[np.ndarray]":
        if self._by_disk is None:
            flat = self.disk_of.ravel()
            order = np.argsort(flat, kind="stable")
            sorted_disks = flat[order]
            stripes = order // self.n
            bounds = np.searchsorted(
                sorted_disks, np.arange(self.hierarchy.num_disks + 1)
            )
            self._by_disk = [
                stripes[bounds[d]:bounds[d + 1]]
                for d in range(self.hierarchy.num_disks)
            ]
        return self._by_disk

    # ------------------------------------------------------------------
    # Cross-check against the placement policy
    # ------------------------------------------------------------------
    def verify_placement(self, sample: int = 256) -> None:
        """Assert the fast path obeys the policy's failure-domain rules.

        Checks (up to ``sample`` stripes): no disk reuse within a stripe,
        and distinct racks whenever the site has enough racks — the exact
        invariant ``PlacementPolicy.place_stripe`` guarantees.  Raises
        :class:`ConfigurationError` on violation.
        """
        rack_of = self.hierarchy.rack_of_disk()
        count = min(sample, self.num_stripes)
        for stripe in range(count):
            disks = self.disk_of[stripe]
            if len(set(disks.tolist())) != self.n:
                raise ConfigurationError(
                    f"stripe {stripe} reuses a disk: {disks.tolist()}"
                )
            racks = rack_of[disks]
            distinct = len(set(racks.tolist()))
            expected = min(self.n, self.hierarchy.racks)
            if distinct < expected:
                raise ConfigurationError(
                    f"stripe {stripe} uses {distinct} racks, "
                    f"expected {expected}: {racks.tolist()}"
                )
