"""Per-stripe erasure state at population scale.

The reliability engine tracks *millions* of stripes over *years*, so a
stripe is not an object — it is a row index into flat numpy arrays.
:class:`StripeMap` owns the static placement geometry (which disk holds
chunk ``j`` of stripe ``s``) and the derived inverse index (which
(stripe, chunk) pairs live on disk ``d``); the engine owns the mutable
failure counters and classifies each stripe into the four-state ladder
used throughout the reporting layer::

    HEALTHY  — every chunk present
    DEGRADED — 1..m-1 chunks lost (repairable, exposed)
    CRITICAL — exactly m chunks lost (one more failure is data loss)
    LOST     — more than m chunks lost (unrecoverable)

Placement is rack-aware and vectorized: each stripe's ``n`` chunks land
in distinct racks whenever the site has ``>= n`` racks (cycling through
racks with distinct machine/disk slots otherwise), the same constraint
:class:`repro.fs.placement.PlacementPolicy` enforces server-by-server in
the flow-level simulator — see ``verify_placement`` and its unit tests
for the cross-check.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.hierarchy import Hierarchy
from repro.util.rng import make_rng

#: Stripe state codes (ordered by severity).
HEALTHY, DEGRADED, CRITICAL, LOST = 0, 1, 2, 3

STATE_NAMES = {
    HEALTHY: "healthy",
    DEGRADED: "degraded",
    CRITICAL: "critical",
    LOST: "lost",
}


def classify(failed_counts: np.ndarray, m: int) -> np.ndarray:
    """State code per stripe from its count of failed chunks."""
    failed = np.asarray(failed_counts)
    states = np.full(failed.shape, HEALTHY, dtype=np.int8)
    states[failed >= 1] = DEGRADED
    states[failed == m] = CRITICAL
    states[failed > m] = LOST
    return states


class StripeMap:
    """Static placement of ``num_stripes`` × ``n`` chunks onto disks."""

    def __init__(self, disk_of: np.ndarray, hierarchy: Hierarchy):
        disk_of = np.asarray(disk_of, dtype=np.int64)
        if disk_of.ndim != 2:
            raise ConfigurationError(
                f"disk_of must be (stripes, n), got shape {disk_of.shape}"
            )
        if disk_of.size and (
            disk_of.min() < 0 or disk_of.max() >= hierarchy.num_disks
        ):
            raise ConfigurationError("disk index out of range for hierarchy")
        self.disk_of = disk_of
        self.hierarchy = hierarchy
        self._by_disk: "List[np.ndarray] | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        hierarchy: Hierarchy,
        n: int,
        num_stripes: int,
        rng: "np.random.Generator | int | None" = None,
    ) -> "StripeMap":
        """Rack-aware random placement, fully vectorized.

        Each stripe draws a random rack order and takes the first ``n``
        (cycling when the site has fewer than ``n`` racks); within each
        rack visit it takes a distinct machine/disk slot.  Distinct racks
        per stripe fall out whenever ``racks >= n``, matching the
        failure-domain pass of ``PlacementPolicy.place_stripe``; with
        fewer racks, domains repeat but disks never do — the same
        fallback the policy applies on small clusters.
        """
        if n < 1:
            raise ConfigurationError("stripes need at least one chunk")
        if num_stripes < 1:
            raise ConfigurationError("need at least one stripe")
        slots_per_rack = (
            hierarchy.machines_per_rack * hierarchy.disks_per_machine
        )
        visits_per_rack = -(-n // hierarchy.racks)  # ceil
        if visits_per_rack > slots_per_rack:
            raise ConfigurationError(
                f"cannot place {n} chunks on {hierarchy.num_disks} disks "
                f"in {hierarchy.racks} racks without reusing a disk"
            )
        rng = make_rng(rng)
        racks = hierarchy.racks
        # Random rack order per stripe; column i uses rack order[i % racks]
        # on its (i // racks)-th visit.
        order = np.argsort(
            rng.random((num_stripes, racks)), axis=1, kind="stable"
        )
        columns = np.arange(n)
        rack_pick = order[:, columns % racks]
        # Distinct slot within the rack per visit: a random base slot,
        # advanced by one per repeat visit (mod slots) so revisits of the
        # same rack never collide on a machine/disk.
        base = rng.integers(0, slots_per_rack, size=(num_stripes, racks))
        slot = (base[:, columns % racks] + columns // racks) % slots_per_rack
        machine = rack_pick * hierarchy.machines_per_rack + slot // (
            hierarchy.disks_per_machine
        )
        disk = machine * hierarchy.disks_per_machine + (
            slot % hierarchy.disks_per_machine
        )
        return cls(disk, hierarchy)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_stripes(self) -> int:
        return self.disk_of.shape[0]

    @property
    def n(self) -> int:
        return self.disk_of.shape[1]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def stripes_on_disk(self, disk: int) -> np.ndarray:
        """Stripe indices with a chunk on ``disk`` (sorted, no repeats)."""
        return self._group_by_disk()[disk]

    def chunks_per_disk(self) -> np.ndarray:
        """``(num_disks,)`` chunk count on each disk."""
        return np.bincount(
            self.disk_of.ravel(), minlength=self.hierarchy.num_disks
        )

    def racks_of_stripe(self, stripe: int) -> np.ndarray:
        """Rack index of each chunk of ``stripe``."""
        return self.hierarchy.rack_of_disk()[self.disk_of[stripe]]

    def _group_by_disk(self) -> "List[np.ndarray]":
        if self._by_disk is None:
            flat = self.disk_of.ravel()
            order = np.argsort(flat, kind="stable")
            sorted_disks = flat[order]
            stripes = order // self.n
            bounds = np.searchsorted(
                sorted_disks, np.arange(self.hierarchy.num_disks + 1)
            )
            self._by_disk = [
                stripes[bounds[d]:bounds[d + 1]]
                for d in range(self.hierarchy.num_disks)
            ]
        return self._by_disk

    # ------------------------------------------------------------------
    # Cross-check against the placement policy
    # ------------------------------------------------------------------
    def verify_placement(self, sample: int = 256) -> None:
        """Assert the fast path obeys the policy's failure-domain rules.

        Checks (up to ``sample`` stripes): no disk reuse within a stripe,
        and distinct racks whenever the site has enough racks — the exact
        invariant ``PlacementPolicy.place_stripe`` guarantees.  Raises
        :class:`ConfigurationError` on violation.
        """
        rack_of = self.hierarchy.rack_of_disk()
        count = min(sample, self.num_stripes)
        for stripe in range(count):
            disks = self.disk_of[stripe]
            if len(set(disks.tolist())) != self.n:
                raise ConfigurationError(
                    f"stripe {stripe} reuses a disk: {disks.tolist()}"
                )
            racks = rack_of[disks]
            distinct = len(set(racks.tolist()))
            expected = min(self.n, self.hierarchy.racks)
            if distinct < expected:
                raise ConfigurationError(
                    f"stripe {stripe} uses {distinct} racks, "
                    f"expected {expected}: {racks.tolist()}"
                )
