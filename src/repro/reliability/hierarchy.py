"""The failure-domain tree: site → rack → machine → disk.

The short-timescale simulator models individual servers on a network
fabric (:mod:`repro.sim.topology`); the years-scale reliability engine
needs the *containment* structure above them — which disks share a
machine, which machines share a rack — because correlated events (rack
power loss, machine reboot) take out whole subtrees at once.

:class:`Hierarchy` is that tree, flattened into numpy index arrays for
the engine's vectorized state updates, with bridges both ways:

* :meth:`placement_policy` exposes the tree as the failure/upgrade
  domain maps of :class:`repro.fs.placement.PlacementPolicy`, so stripe
  placement and repair-destination eligibility obey the same rack
  constraints as the flow-level simulator.
* :meth:`fat_tree` maps the machine layer onto
  :class:`repro.sim.topology.FatTreeTopology`, the fabric the calibrated
  repair-time models assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.fs.placement import PlacementPolicy
from repro.sim.topology import FatTreeTopology


@dataclass(frozen=True)
class Hierarchy:
    """A regular site: ``racks`` × ``machines_per_rack`` × ``disks_per_machine``."""

    racks: int = 12
    machines_per_rack: int = 4
    disks_per_machine: int = 4
    #: Upgrade domains stripe machines round-robin, like Azure's UDs.
    upgrade_domains: int = 4

    def __post_init__(self) -> None:
        if min(self.racks, self.machines_per_rack,
               self.disks_per_machine) < 1:
            raise ConfigurationError(
                "hierarchy needs >= 1 rack, machine, and disk per level"
            )
        if self.upgrade_domains < 1:
            raise ConfigurationError("need >= 1 upgrade domain")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.racks * self.machines_per_rack

    @property
    def num_disks(self) -> int:
        return self.num_machines * self.disks_per_machine

    # ------------------------------------------------------------------
    # Index arrays (disk index -> containing component index)
    # ------------------------------------------------------------------
    def machine_of_disk(self) -> np.ndarray:
        """``(num_disks,)`` machine index of every disk."""
        return np.arange(self.num_disks) // self.disks_per_machine

    def rack_of_disk(self) -> np.ndarray:
        """``(num_disks,)`` rack index of every disk."""
        return self.machine_of_disk() // self.machines_per_rack

    def rack_of_machine(self) -> np.ndarray:
        """``(num_machines,)`` rack index of every machine."""
        return np.arange(self.num_machines) // self.machines_per_rack

    def disks_of_machine(self, machine: int) -> np.ndarray:
        """Disk indices housed by ``machine``."""
        if not 0 <= machine < self.num_machines:
            raise ConfigurationError(f"machine {machine} out of range")
        start = machine * self.disks_per_machine
        return np.arange(start, start + self.disks_per_machine)

    def machines_of_rack(self, rack: int) -> np.ndarray:
        """Machine indices housed by ``rack``."""
        if not 0 <= rack < self.racks:
            raise ConfigurationError(f"rack {rack} out of range")
        start = rack * self.machines_per_rack
        return np.arange(start, start + self.machines_per_rack)

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def disk_id(self, disk: int) -> str:
        machine = disk // self.disks_per_machine
        return f"{self.machine_id(machine)}.d{disk % self.disks_per_machine}"

    def machine_id(self, machine: int) -> str:
        rack = machine // self.machines_per_rack
        return f"r{rack}.m{machine % self.machines_per_rack}"

    def disk_ids(self) -> "List[str]":
        return [self.disk_id(d) for d in range(self.num_disks)]

    def machine_ids(self) -> "List[str]":
        return [self.machine_id(m) for m in range(self.num_machines)]

    # ------------------------------------------------------------------
    # Bridges to the placement and topology layers
    # ------------------------------------------------------------------
    def failure_domain_map(self) -> "Dict[str, int]":
        """Disk id -> rack index (the failure domain placement avoids)."""
        rack = self.rack_of_disk()
        return {self.disk_id(d): int(rack[d]) for d in range(self.num_disks)}

    def upgrade_domain_map(self) -> "Dict[str, int]":
        """Disk id -> upgrade domain (machine round-robin, Azure style)."""
        machine = self.machine_of_disk()
        return {
            self.disk_id(d): int(machine[d]) % self.upgrade_domains
            for d in range(self.num_disks)
        }

    def placement_policy(
        self, rng: "np.random.Generator | int | None" = None
    ) -> PlacementPolicy:
        """The tree as a :class:`PlacementPolicy` over disk ids."""
        return PlacementPolicy(
            self.failure_domain_map(), self.upgrade_domain_map(), rng=rng
        )

    def placement_strategy(
        self,
        name: str,
        rng: "np.random.Generator | int | None" = None,
        scatter_width: "int | None" = None,
    ) -> PlacementPolicy:
        """Any registered placement strategy over this tree's disk ids.

        The scatter-controlled strategies (``copyset``/``pss``) carve
        their server groups out of the same failure-domain map the
        random policy spreads over, so both placement regimes and the
        population-scale :meth:`repro.reliability.stripes.StripeMap.build`
        modes agree on what a rack is.
        """
        from repro.fs.placement import make_placement

        return make_placement(
            name,
            self.failure_domain_map(),
            self.upgrade_domain_map(),
            rng=rng,
            scatter_width=scatter_width,
        )

    def fat_tree(
        self,
        link_bandwidth: "float | str" = "1Gbps",
        oversubscription: float = 1.0,
    ) -> FatTreeTopology:
        """The machine layer as a rack-structured fabric."""
        return FatTreeTopology(
            self.machine_ids(),
            link_bandwidth,
            servers_per_rack=self.machines_per_rack,
            oversubscription=oversubscription,
        )
