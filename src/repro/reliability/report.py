"""The durability-comparison experiment: repair speed → nines.

The paper's evaluation stops at repair *time* (Figures 6–9); this driver
carries the result the rest of the way to the quantity operators size
clusters by.  It runs the Monte Carlo engine over the four deployment
codes of Table 1 under an **accelerated, bandwidth-limited regime** —
disk lifetimes compressed from years to days and a repair queue narrow
enough to back up — so loss events are observable in seconds of wall
time, then compares traditional star repair against PPR and m-PPR on
MTTDL, P(loss)/year, availability nines, and the degraded-exposure
integral.

Because repair time enters MTTDL roughly as ``(mu/lambda)^m``, PPR's
~``k / ceil(log2(k+1))``× repair speedup should buy a *super*-
proportional MTTDL win; the benchmark (``benchmarks/bench_reliability.py``)
asserts at least proportional.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import EVAL_CODES, ExperimentResult
from repro.analysis.render import Table
from repro.reliability.engine import (
    ReliabilityConfig,
    ReliabilityEngine,
)
from repro.reliability.hierarchy import Hierarchy
from repro.reliability.results import ReliabilityReport


def accelerated_config(
    code: str = "rs(6,3)",
    scheme: str = "ppr",
    *,
    n: "Optional[int]" = None,
    num_stripes: int = 250,
    trials: int = 5,
    horizon_years: float = 10.0,
    seed: int = 2016,
    **overrides,
) -> ReliabilityConfig:
    """The stress regime shared by the benchmark, example, and tests.

    Disk MTTF is compressed to days (accelerated aging — standard for
    Monte Carlo durability studies, e.g. the simulators behind Google's
    and Facebook's availability papers), chunks are large, the network
    slow, and only two repair slots serve the whole site, so the repair
    queue — not the failure process — limits durability.  That is
    precisely the regime where repair speed shows up in MTTDL.

    ``n`` (total chunks; inferred via one engine construction when not
    given) sizes the hierarchy to ``n`` racks × 2 disks so every code
    places one chunk per rack.
    """
    if n is None:
        n = ReliabilityEngine(
            ReliabilityConfig(code=code, scheme=scheme)
        ).code.n
    hierarchy = Hierarchy(
        racks=n, machines_per_rack=1, disks_per_machine=2,
        upgrade_domains=min(4, n),
    )
    base = dict(
        code=code,
        scheme=scheme,
        num_stripes=num_stripes,
        trials=trials,
        horizon_years=horizon_years,
        hierarchy=hierarchy,
        disk_lifetime="exp:5d",
        chunk_size="256MiB",
        net_bandwidth="0.5Gbps",
        repair_slots=2,
        machine_transient_rate_per_year=4.0,
        burst_rate_per_rack_per_year=0.2,
        seed=seed,
    )
    base.update(overrides)
    return ReliabilityConfig(**base)


#: The paper's own scheme comparison (the redundancy matrix sweeps the
#: full engine SCHEMES registry; this experiment stays pinned to the
#: Table 1 trio so its benchmark baseline is stable).
COMPARISON_SCHEMES = ("traditional", "ppr", "mppr")


def durability_comparison(
    codes: "Sequence[Tuple[int, int]]" = EVAL_CODES,
    schemes: "Sequence[str]" = COMPARISON_SCHEMES,
    num_stripes: int = 250,
    trials: int = 5,
    seed: int = 2016,
) -> ExperimentResult:
    """MTTDL / nines for every (code, scheme) pair of Table 1.

    Returns one row per pair; ``mttdl_vs_traditional_x`` is the headline
    column (how many times longer the expected time to data loss is than
    star repair under identical failures), and the wall-clock throughput
    column carries a ``.mean`` suffix so the perf gate skips it.
    """
    table = Table(
        ["code", "scheme", "repair/chunk", "MTTDL", "×trad",
         "P(loss)/yr", "nines", "exposure"],
        title="Durability under accelerated aging (bandwidth-limited)",
    )
    rows: "List[Dict[str, object]]" = []
    for k, m in codes:
        baseline_mttdl: "Optional[float]" = None
        for scheme in schemes:
            config = accelerated_config(
                f"rs({k},{m})", scheme, n=k + m,
                num_stripes=num_stripes, trials=trials, seed=seed,
            )
            started = time.perf_counter()
            report = ReliabilityEngine(config).run()
            elapsed = time.perf_counter() - started
            mttdl, mttdl_lo, mttdl_hi = report.mttdl_years()
            if scheme == "traditional":
                baseline_mttdl = mttdl
            ratio = mttdl / baseline_mttdl if baseline_mttdl else 1.0
            p_loss = report.p_loss_per_year()[0]
            nines = report.availability_nines()
            exposure = report.exposure_chunk_hours_per_stripe_year()
            rows.append({
                "code": report.code_name,
                "scheme": scheme,
                "per_chunk_repair_s": report.per_chunk_repair_hours * 3600,
                "losses": report.total_losses,
                "mttdl_years": mttdl,
                "mttdl_ci_low_years": mttdl_lo,
                "mttdl_ci_high_years": mttdl_hi,
                "mttdl_vs_traditional_x": ratio,
                "p_loss_per_year": p_loss,
                "availability_nines": nines,
                "exposure_chunk_hours_per_stripe_year": exposure,
                # wall-clock; machine-dependent, hence the .mean suffix
                # (tools/bench_compare.py skips it like timing stats).
                "stripe_years_per_sec.mean": (
                    report.total_stripe_years / elapsed if elapsed else 0.0
                ),
            })
            table.add_row(
                report.code_name,
                scheme,
                f"{report.per_chunk_repair_hours * 3600:.1f}s",
                f"{mttdl:.3f}y",
                f"{ratio:.2f}x",
                f"{p_loss:.3f}",
                f"{nines:.2f}",
                f"{exposure:.0f} ch-h/sy",
            )
    notes = (
        "Accelerated regime: disk MTTF 5 days, 256 MiB chunks over a "
        "0.5 Gbps fabric, 2 repair slots.  MTTDL ratios transfer to "
        "realistic lifetimes; absolute values do not."
    )
    return ExperimentResult(
        experiment_id="durability_comparison",
        title="Durability: traditional vs PPR vs m-PPR",
        rows=rows,
        report=table.render() + "\n" + notes,
        notes=notes,
    )
