"""Failure and recovery time distributions for the reliability engine.

The long-horizon Monte Carlo engine (:mod:`repro.reliability.engine`)
draws component lifetimes and downtimes from the pluggable models here.
Two families cover the literature the paper leans on:

* :class:`ExponentialLifetime` — memoryless, the assumption behind every
  closed-form Markov MTTDL model (and the mode the engine is validated
  against in :mod:`repro.reliability.markov`).
* :class:`WeibullLifetime` — the shape the disk-population studies
  (Schroeder & Gibson FAST'07, Elerath & Pecht) actually fit; shape > 1
  models wear-out, shape < 1 infant mortality.

All sampling flows through numpy Generators from :mod:`repro.util.rng`,
so a single seed reproduces an entire multi-trial simulation.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Hours in a (non-leap) year; the engine's reporting unit conversions.
HOURS_PER_YEAR = 8760.0


class LifetimeModel:
    """Base class: a positive random duration in hours."""

    @property
    def mean_hours(self) -> float:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> float:
        """One duration draw, in hours."""
        raise NotImplementedError


@dataclass(frozen=True)
class ExponentialLifetime(LifetimeModel):
    """Memoryless lifetime with the given mean (MTTF) in hours."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(
                f"exponential mean must be positive, got {self.mean}"
            )

    @property
    def mean_hours(self) -> float:
        return self.mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))


@dataclass(frozen=True)
class WeibullLifetime(LifetimeModel):
    """Weibull lifetime: ``scale`` (hours) and ``shape`` (k).

    ``shape=1`` degenerates to :class:`ExponentialLifetime`; disk
    populations are typically fit with shapes around 1.1–1.2 (gentle
    wear-out).
    """

    scale: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.shape <= 0:
            raise ConfigurationError(
                f"weibull scale/shape must be positive, got "
                f"{self.scale}/{self.shape}"
            )

    @property
    def mean_hours(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))


_SPEC_RE = re.compile(
    r"^\s*(?P<family>exp|weibull)\s*:\s*(?P<scale>\d+(?:\.\d+)?)\s*"
    r"(?P<unit>h|d|y)\s*(?::\s*(?P<shape>\d+(?:\.\d+)?))?\s*$",
    re.IGNORECASE,
)

_UNIT_HOURS = {"h": 1.0, "d": 24.0, "y": HOURS_PER_YEAR}


def make_lifetime(spec: "str | LifetimeModel") -> LifetimeModel:
    """Build a lifetime model from a spec string.

    Understood formats (case-insensitive)::

        "exp:10y"           exponential, mean 10 years
        "exp:87600h"        exponential, mean 87600 hours
        "weibull:10y:1.12"  Weibull, scale 10 years, shape 1.12

    An existing model passes through unchanged, mirroring
    :func:`repro.util.rng.make_rng`.
    """
    if isinstance(spec, LifetimeModel):
        return spec
    match = _SPEC_RE.match(spec)
    if not match:
        raise ConfigurationError(
            f"unparseable lifetime spec: {spec!r}; expected e.g. "
            f"'exp:10y' or 'weibull:10y:1.12'"
        )
    hours = float(match.group("scale")) * _UNIT_HOURS[
        match.group("unit").lower()
    ]
    family = match.group("family").lower()
    shape = match.group("shape")
    if family == "exp":
        if shape is not None:
            raise ConfigurationError(
                f"exponential lifetimes take no shape: {spec!r}"
            )
        return ExponentialLifetime(hours)
    return WeibullLifetime(hours, float(shape) if shape else 1.0)
