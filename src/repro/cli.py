"""Command-line interface: ``python -m repro <command>``.

Real file encode/decode/repair plus simulation front-ends::

    python -m repro info
    python -m repro encode photo.jpg --code "rs(6,3)" --out-dir stripe/
    python -m repro corrupt stripe/manifest.json --chunk 2
    python -m repro repair  stripe/manifest.json --chunk 2 --strategy ppr
    python -m repro decode  stripe/manifest.json --out photo.restored.jpg
    python -m repro simulate --code "rs(12,4)" --chunk-size 64MiB
    python -m repro evaluate            # every table/figure, quick mode

The encode/decode/repair path runs the *real* coding layer on your bytes;
``simulate``/``evaluate`` drive the cluster simulator.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.codes import available_codes, make_code
from repro.errors import ReproError
from repro.repair.plan import STRATEGIES, build_plan
from repro.repair.executor import execute_plan
from repro.util.units import parse_bandwidth, parse_size

MANIFEST_NAME = "manifest.json"


# ----------------------------------------------------------------------
# info
# ----------------------------------------------------------------------
def cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — Partial-Parallel-Repair reproduction")
    print(f"code families : {', '.join(available_codes())}")
    print(f"strategies    : {', '.join(STRATEGIES)}")
    print("docs          : README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


# ----------------------------------------------------------------------
# encode / decode / corrupt / repair on real files
# ----------------------------------------------------------------------
def _load_manifest(path: pathlib.Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _chunk_path(manifest_path: pathlib.Path, index: int) -> pathlib.Path:
    return manifest_path.parent / f"chunk-{index:02d}.bin"


def cmd_encode(args: argparse.Namespace) -> int:
    code = make_code(args.code)
    blob = pathlib.Path(args.input).read_bytes()
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    chunks = code.encode_blob(blob)
    for index, chunk in enumerate(chunks):
        (out_dir / f"chunk-{index:02d}.bin").write_bytes(chunk.tobytes())
    manifest = {
        "code": args.code,
        "blob_size": len(blob),
        "chunk_length": int(chunks[0].size),
        "num_chunks": code.n,
        "source": str(args.input),
    }
    manifest_path = out_dir / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    print(f"encoded {len(blob)} bytes into {code.n} chunks of "
          f"{manifest['chunk_length']} bytes each ({code.name})")
    print(f"manifest: {manifest_path}")
    return 0


def _available_chunks(manifest_path: pathlib.Path, manifest: dict) -> dict:
    available = {}
    for index in range(manifest["num_chunks"]):
        path = _chunk_path(manifest_path, index)
        if path.exists():
            available[index] = np.frombuffer(
                path.read_bytes(), dtype=np.uint8
            ).copy()
    return available


def cmd_decode(args: argparse.Namespace) -> int:
    manifest_path = pathlib.Path(args.manifest)
    manifest = _load_manifest(manifest_path)
    code = make_code(manifest["code"])
    available = _available_chunks(manifest_path, manifest)
    blob = code.decode_blob(available, manifest["blob_size"])
    pathlib.Path(args.out).write_bytes(blob)
    print(f"decoded {len(blob)} bytes from {len(available)} surviving "
          f"chunks -> {args.out}")
    return 0


def cmd_corrupt(args: argparse.Namespace) -> int:
    manifest_path = pathlib.Path(args.manifest)
    path = _chunk_path(manifest_path, args.chunk)
    if not path.exists():
        print(f"chunk {args.chunk} is already missing", file=sys.stderr)
        return 1
    path.unlink()
    print(f"deleted {path} (simulated erasure)")
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    if args.live:
        return _cmd_repair_live(args)
    if args.manifest is None:
        print("error: manifest is required without --live", file=sys.stderr)
        return 2
    if args.chunk < 0:
        print("error: --chunk is required without --live", file=sys.stderr)
        return 2
    manifest_path = pathlib.Path(args.manifest)
    manifest = _load_manifest(manifest_path)
    code = make_code(manifest["code"])
    available = _available_chunks(manifest_path, manifest)
    lost = args.chunk
    if lost in available:
        print(f"chunk {lost} is present; nothing to repair")
        return 0
    recipe = code.repair_recipe(lost, available.keys())
    plan = build_plan(args.strategy, recipe)
    rebuilt = execute_plan(plan, available)
    _chunk_path(manifest_path, lost).write_bytes(rebuilt.tobytes())
    helpers = ", ".join(str(h) for h in recipe.helpers)
    print(f"rebuilt chunk {lost} with {args.strategy} plan "
          f"({plan.num_steps} step(s)) from helpers [{helpers}]")
    print(f"total transfer: {plan.total_bytes(manifest['chunk_length']):,.0f} "
          f"bytes; max through one node: "
          f"{plan.max_bytes_through_node(manifest['chunk_length']):,.0f}")
    return 0


# ----------------------------------------------------------------------
# live mode: serve / repair --live
# ----------------------------------------------------------------------
def _parse_address(text: str):
    from repro.live import Address

    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"bad address {text!r}; expected HOST:PORT")
    return Address(host=host, port=int(port))


def _payload_sha256(payload: np.ndarray) -> str:
    import hashlib

    return hashlib.sha256(payload.tobytes()).hexdigest()


async def _serve_cluster(args: argparse.Namespace) -> int:
    """One-process localhost cluster: meta + N chunk servers on TCP."""
    import asyncio
    import hashlib

    from repro.live import LiveCluster, LiveConfig

    config = LiveConfig(
        heartbeat_interval=args.heartbeat_interval,
        failure_detection_timeout=3 * args.heartbeat_interval,
        collector_enabled=args.collector,
    )
    cluster = LiveCluster(
        num_servers=args.servers,
        config=config,
        payload_bytes=args.payload_bytes,
        seed=args.seed,
    )
    await cluster.start(meta_port=args.port)
    try:
        print(f"META {cluster.meta.address}", flush=True)
        for server_id in cluster.server_ids:
            print(
                f"SERVER {server_id} {cluster.server(server_id).address}",
                flush=True,
            )
        if args.stripe:
            stripe = await cluster.write_stripe(args.stripe)
            print(f"STRIPE {stripe.stripe_id} {stripe.spec}", flush=True)
            for index, chunk_id in enumerate(stripe.chunk_ids):
                truth = cluster.truth_payload(chunk_id)
                assert truth is not None
                digest = hashlib.sha256(truth.tobytes()).hexdigest()
                print(
                    f"CHUNK {index} {chunk_id} {stripe.hosts[index]} "
                    f"{digest}",
                    flush=True,
                )
            if args.kill_index is not None:
                victim = stripe.hosts[args.kill_index]
                await cluster.kill_server(victim)
                print(f"KILLED {victim}", flush=True)
        print("READY", flush=True)
        await asyncio.Event().wait()  # serve until interrupted
    except asyncio.CancelledError:
        pass
    finally:
        await cluster.stop()
    return 0


async def _serve_meta(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live import LiveConfig, LiveMetaServer

    meta = LiveMetaServer(LiveConfig())
    await meta.start(port=args.port)
    try:
        print(f"META {meta.address}", flush=True)
        print("READY", flush=True)
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await meta.stop()
    return 0


async def _serve_chunk(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live import LiveChunkServer, LiveConfig

    if not args.meta:
        print("error: --role chunk requires --meta HOST:PORT",
              file=sys.stderr)
        return 2
    config = LiveConfig(
        heartbeat_interval=args.heartbeat_interval,
        failure_detection_timeout=3 * args.heartbeat_interval,
        collector_enabled=args.collector,
    )
    server = LiveChunkServer(args.id, _parse_address(args.meta), config)
    await server.start(port=args.port)
    try:
        print(f"SERVER {args.id} {server.address}", flush=True)
        print("READY", flush=True)
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    runner = {
        "cluster": _serve_cluster,
        "meta": _serve_meta,
        "chunk": _serve_chunk,
    }[args.role]
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 0


def _cmd_repair_live(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live import LiveConfig, LiveCoordinator
    from repro.sim.metrics import PHASES

    if not args.meta or not args.stripe_id:
        print(
            "error: --live requires --meta HOST:PORT and --stripe-id",
            file=sys.stderr,
        )
        return 2

    async def run() -> int:
        coordinator = LiveCoordinator(_parse_address(args.meta), LiveConfig())
        try:
            report = await coordinator.repair(
                args.stripe_id,
                lost_index=args.chunk if args.chunk >= 0 else None,
                strategy=args.strategy,
                num_slices=args.slices,
            )
        finally:
            await coordinator.close()
        result = report.result
        print(
            f"repaired {result.stripe_id}#{result.lost_index} "
            f"({result.code_name}, {result.strategy}) at "
            f"{result.destination} in {result.duration * 1e3:.1f}ms "
            f"over {result.num_helpers} helpers, "
            f"attempt(s)={report.attempts}"
        )
        for name in PHASES:
            busy = result.phase_busy.get(name, 0.0)
            if busy > 0:
                print(f"  {name:<10} {busy * 1e3:8.2f}ms "
                      f"({result.phase_share(name):6.1%})")
        print(f"traffic: {result.traffic.total_bytes():,.0f} bytes on the wire")
        print(f"SHA256 {_payload_sha256(report.payload)}", flush=True)
        return 0

    return asyncio.run(run())


# ----------------------------------------------------------------------
# trace: record / convert / timeline / summary
# ----------------------------------------------------------------------
def _trace_record_sim(args: argparse.Namespace):
    """One simulated repair with tracing on.

    Returns ``(tracer, clock, meta, series)`` where ``series`` is the
    telemetry store's snapshot (time-series records for the trace file).
    """
    from repro import obs
    from repro.core.single_repair import run_single_repair
    from repro.fs.cluster import StorageCluster

    code = make_code(args.code)
    cluster = StorageCluster.smallsite(
        num_servers=args.servers,
        link_bandwidth=args.bandwidth,
        seed=args.seed,
    )
    telemetry = cluster.enable_telemetry(interval=args.sample_interval)
    stripe = cluster.write_stripe(code, args.chunk_size)
    profiler = None
    if args.profile:
        from repro.obs.profiler import VirtualProfiler

        # Virtual-clock profiler: attributes simulated seconds to event
        # callbacks.  Read-only on the simulation — results stay
        # bit-identical to an unprofiled run.
        profiler = VirtualProfiler().attach(cluster.sim)
    tracer = obs.enable(clock=lambda: cluster.sim.now, clock_name="virtual")
    result = run_single_repair(
        cluster,
        stripe,
        lost_index=args.lost,
        strategy=args.strategy,
        num_slices=args.slices,
    )
    obs.registry().counter("sim.events.executed").inc(
        cluster.sim.events_executed
    )
    print(result.summary())
    if profiler is not None:
        profiler.profile.write_collapsed(args.profile)
        print(
            f"profile: {profiler.events_observed} events, "
            f"{len(profiler.profile)} stacks -> {args.profile} "
            f"(collapsed-stack format; feed to flamegraph.pl or speedscope)"
        )
    meta = {
        "mode": "sim",
        "strategy": args.strategy,
        "code": args.code,
        "stripe": stripe.stripe_id,
        # Modeled inputs for `repro trace conform`: the Eq. 1 terms need
        # the chunk size and the (uncontended) network/disk bandwidths.
        "chunk_size_bytes": parse_size(args.chunk_size),
        "net_bandwidth_Bps": parse_bandwidth(args.bandwidth),
        "io_bandwidth_Bps": parse_bandwidth(cluster.config.disk_bandwidth),
        "io_seek_s": next(
            iter(cluster.servers.values())
        ).disk.seek_latency,
    }
    return tracer, "virtual", meta, telemetry.snapshot()


async def _trace_record_live(args: argparse.Namespace):
    """One live repair with tracing on; returns (tracer, clock, meta)."""
    from repro import obs
    from repro.live import LiveConfig, LiveCoordinator
    from repro.live import trace as live_trace

    tracer = obs.enable(clock=live_trace.now, clock_name="wall")
    if args.profile:
        from repro.obs import profiler as prof_mod

        prof_mod.start_wall()
    coordinator = LiveCoordinator(_parse_address(args.meta), LiveConfig())
    try:
        report = await coordinator.repair(
            args.stripe_id,
            lost_index=args.chunk if args.chunk >= 0 else None,
            strategy=args.strategy,
        )
    finally:
        await coordinator.close()
        if args.profile:
            profile = prof_mod.stop_wall()
            if profile is not None:
                profile.write_collapsed(args.profile)
                print(f"profile: {len(profile)} stacks -> {args.profile}")
    result = report.result
    print(
        f"repaired {result.stripe_id}#{result.lost_index} "
        f"({result.strategy}) in {result.duration * 1e3:.1f}ms; "
        f"SHA256 {_payload_sha256(report.payload)}"
    )
    meta = {
        "mode": "live",
        "strategy": args.strategy,
        "stripe": args.stripe_id,
    }
    return tracer, "wall", meta, []


def _cmd_trace_record(args: argparse.Namespace) -> int:
    import asyncio

    from repro import obs

    if args.live and (not args.meta or not args.stripe_id):
        print(
            "error: trace record --live requires --meta HOST:PORT "
            "and --stripe-id",
            file=sys.stderr,
        )
        return 2
    try:
        if args.live:
            tracer, clock, meta, series = asyncio.run(
                _trace_record_live(args)
            )
        else:
            tracer, clock, meta, series = _trace_record_sim(args)
        spans = tracer.drain()
        events = obs.write_trace(
            args.out,
            spans,
            clock=clock,
            metrics=obs.registry().snapshot(),
            series=series,
            extra_meta=meta,
        )
    finally:
        # Never leak the process-global tracer past the recording.
        obs.disable()
        obs.registry().reset()
    print(f"trace: {len(spans)} spans, {events} events -> {args.out}")
    print(f"view it: python -m repro trace convert {args.out} "
          f"--out trace.chrome.json  (open in https://ui.perfetto.dev)")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro import obs

    meta, spans, _metrics = obs.load_trace(args.trace)
    document = obs.chrome_trace(
        spans, clock=str(meta.get("clock", "monotonic"))
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {len(document['traceEvents'])} Chrome trace events -> "
        f"{args.out} (load in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def _cmd_trace_timeline(args: argparse.Namespace) -> int:
    from repro import obs

    _meta, spans, _metrics = obs.load_trace(args.trace)
    print(obs.render_timeline(spans, width=args.width), end="")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro import obs

    meta, spans, metrics = obs.load_trace(args.trace)
    print(f"trace {args.trace}: {len(spans)} spans, clock={meta.get('clock')}")
    print(obs.summarize(spans, metrics), end="")
    return 0


def _cmd_trace_prom(args: argparse.Namespace) -> int:
    from repro import obs

    _meta, _spans, metrics = obs.load_trace(args.trace)
    text = obs.render_prometheus(metrics, namespace=args.namespace)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote Prometheus exposition -> {args.out}")
    else:
        print(text, end="")
    return 0


def _load_stitched_dags(trace_path: str):
    """Load a JSONL trace and stitch it into causal repair DAGs."""
    from repro import obs
    from repro.obs import causal

    meta, spans, _metrics = obs.load_trace(trace_path)
    dags = causal.stitch(spans, clock=str(meta.get("clock", "wall")))
    return meta, dags


def _cmd_trace_critical_path(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_critical_path

    _meta, dags = _load_stitched_dags(args.trace)
    if not dags:
        print("no stitched repairs found in trace", file=sys.stderr)
        return 1
    for dag in dags:
        print(render_critical_path(dag, width=args.width), end="")
    return 0


def _cmd_trace_conform(args: argparse.Namespace) -> int:
    from repro.obs import conformance

    meta, dags = _load_stitched_dags(args.trace)
    reports = conformance.check_trace(
        dags, meta=meta, tolerance=args.tolerance
    )
    print(conformance.render_reports(reports), end="")
    if not reports:
        return 1
    return 0 if all(r.passed for r in reports) else 1


def cmd_trace(args: argparse.Namespace) -> int:
    runner = {
        "record": _cmd_trace_record,
        "convert": _cmd_trace_convert,
        "timeline": _cmd_trace_timeline,
        "summary": _cmd_trace_summary,
        "prom": _cmd_trace_prom,
        "critical-path": _cmd_trace_critical_path,
        "conform": _cmd_trace_conform,
    }[args.trace_command]
    return runner(args)


# ----------------------------------------------------------------------
# top: live cluster dashboard
# ----------------------------------------------------------------------
async def _top_live(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live.config import LiveConfig
    from repro.live.rpc import Address, RpcClientPool
    from repro.live.wire import MessageType
    from repro.obs import topview

    config = LiveConfig()
    pool = RpcClientPool(config)
    meta_addr = _parse_address(args.meta)
    color = not args.no_color
    iteration = 0
    collector_mode = bool(getattr(args, "collector", False))
    try:
        while True:
            meta_client = pool.get(meta_addr)
            incidents: "Optional[list]" = [] if args.json else None
            if collector_mode:
                # One RPC renders the whole fleet: the meta-hosted
                # collector already holds every node's pushed series,
                # health and histograms — no per-node polling.
                resp = await meta_client.call(
                    MessageType.COLLECTOR_QUERY, {"what": "top"}
                )
                fleet = dict(resp.payload.get("fleet", {}))  # type: ignore[arg-type]
                series = list(resp.payload.get("series", []))  # type: ignore[arg-type]
                now = float(resp.payload.get("time", 0.0))  # type: ignore[arg-type]
            else:
                health = await meta_client.call(MessageType.HEALTH, {})
                fleet = dict(health.payload.get("servers", {}))  # type: ignore[arg-type]
                listing = await meta_client.call(MessageType.LIST_SERVERS, {})
                addresses = dict(listing.payload.get("servers", {}))  # type: ignore[arg-type]
                stats = await meta_client.call(MessageType.STATS, {})
                series = list(stats.payload.get("series", []))  # type: ignore[arg-type]
                if args.json:
                    try:
                        resp = await meta_client.call(
                            MessageType.DOCTOR, {}, retries=0
                        )
                        incidents.extend(resp.payload.get("incidents", []))  # type: ignore[union-attr, arg-type]
                    except ReproError:
                        pass  # pre-doctor meta-servers have no DOCTOR
                for sid in sorted(addresses):
                    if not fleet.get(sid, {}).get("alive", False):
                        continue
                    try:
                        client = pool.get(Address.from_wire(addresses[sid]))
                        resp = await client.call(
                            MessageType.STATS, {}, retries=0
                        )
                    except ReproError:
                        continue  # peer died between HEALTH and STATS
                    series.extend(resp.payload.get("series", []))  # type: ignore[arg-type]
                    if args.json:
                        try:
                            doc = await client.call(
                                MessageType.DOCTOR, {}, retries=0
                            )
                            incidents.extend(doc.payload.get("incidents", []))  # type: ignore[union-attr, arg-type]
                        except ReproError:
                            pass
                now = float(health.payload.get("time", 0.0))  # type: ignore[arg-type]
            if args.json:
                print(
                    json.dumps(
                        topview.snapshot_dict(
                            fleet,
                            series,
                            now=now,
                            source=args.meta,
                            incidents=incidents,
                        ),
                        indent=2,
                        sort_keys=True,
                        default=str,
                    )
                )
                return 0
            frame = topview.render_top(
                fleet,
                series,
                now=now,
                source=args.meta,
                color=color,
            )
            if args.iterations != 1 and iteration > 0:
                print(topview.ANSI["clear"], end="")
            print(frame, end="", flush=True)
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)
    finally:
        await pool.close()


def cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    if args.once or args.json:
        args.iterations = 1
    if args.replay:
        from repro import obs
        from repro.obs import topview

        series = obs.load_series(args.replay)
        fleet = topview.fleet_from_series(series)
        if args.json:
            print(
                json.dumps(
                    topview.snapshot_dict(
                        fleet, series, source=f"replay:{args.replay}"
                    ),
                    indent=2,
                    sort_keys=True,
                    default=str,
                )
            )
            return 0
        print(
            topview.render_top(
                fleet,
                series,
                source=f"replay:{args.replay}",
                color=not args.no_color,
            ),
            end="",
        )
        return 0
    if not args.meta:
        print(
            "error: top requires --meta HOST:PORT (or --replay TRACE)",
            file=sys.stderr,
        )
        return 2
    try:
        return asyncio.run(_top_live(args))
    except KeyboardInterrupt:
        return 0


# ----------------------------------------------------------------------
# query: the collector's tiered retention over one RPC
# ----------------------------------------------------------------------
def _parse_label_filters(pairs: "List[str]") -> "dict":
    """``["node=S001", "class=repair"]`` -> label-filter dict."""
    labels: "dict" = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ReproError(
                f"bad --label {pair!r}; expected KEY=VALUE"
            )
        labels[key] = value
    return labels


def _render_query_series(series: "List[dict]") -> str:
    """Human rendering of COLLECTOR_QUERY results, raw or downsampled."""
    if not series:
        return "(no matching series)"
    lines: "List[str]" = []
    for snap in series:
        labels = snap.get("labels") or {}
        label_text = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
        title = f"{snap.get('name')}{{{label_text}}} [{snap.get('tier', 'raw')}]"
        lines.append(title)
        if "buckets" in snap:
            for bucket in snap["buckets"]:
                lines.append(
                    f"  t={bucket['t']:<12g} n={bucket['count']:<6d} "
                    f"mean={bucket['mean']:<12.6g} "
                    f"min={bucket['min']:<12.6g} max={bucket['max']:.6g}"
                )
        else:
            samples = snap.get("samples") or []
            for t, v in samples[-10:]:
                lines.append(f"  t={t:<12g} v={v:.6g}")
            if len(samples) > 10:
                lines.append(f"  ... {len(samples) - 10} earlier samples")
    return "\n".join(lines)


async def _query_live(args: argparse.Namespace) -> int:
    from repro.live.config import LiveConfig
    from repro.live.rpc import RpcClientPool
    from repro.live.wire import MessageType

    pool = RpcClientPool(LiveConfig())
    try:
        client = pool.get(_parse_address(args.meta))
        if args.prom:
            payload: "dict" = {"what": "prom"}
        elif args.fleet:
            payload = {"what": "fleet"}
        elif args.stats:
            payload = {"what": "stats"}
        else:
            payload = {
                "what": "query",
                "metric": args.metric,
                "labels": _parse_label_filters(args.label),
                "tier": args.tier,
            }
            if args.start is not None:
                payload["start"] = args.start
            if args.end is not None:
                payload["end"] = args.end
        resp = await client.call(MessageType.COLLECTOR_QUERY, payload)
        body = dict(resp.payload)
        if args.prom:
            print(str(body.get("text", "")), end="")
            return 0
        if args.json or args.fleet or args.stats:
            print(json.dumps(body, indent=2, sort_keys=True, default=str))
            return 0
        print(_render_query_series(list(body.get("series", []))))
        return 0
    finally:
        await pool.close()


def cmd_query(args: argparse.Namespace) -> int:
    import asyncio

    return asyncio.run(_query_live(args))


# ----------------------------------------------------------------------
# doctor: incident bundles (list / show / explain)
# ----------------------------------------------------------------------
async def _doctor_fetch(args: argparse.Namespace):
    """Poll the fleet's DOCTOR endpoints: (summaries, wanted bundle)."""
    from repro.live.config import LiveConfig
    from repro.live.rpc import Address, RpcClientPool
    from repro.live.wire import MessageType

    wanted = getattr(args, "incident_id", None)
    pool = RpcClientPool(LiveConfig())
    meta_addr = _parse_address(args.meta)
    summaries: "List[dict]" = []
    bundle: "Optional[dict]" = None
    try:
        targets = [meta_addr]
        try:
            listing = await pool.get(meta_addr).call(
                MessageType.LIST_SERVERS, {}
            )
            targets.extend(
                Address.from_wire(addr)
                for _sid, addr in sorted(
                    dict(listing.payload.get("servers", {})).items()  # type: ignore[arg-type]
                )
            )
        except ReproError:
            pass  # a lone chunkserver as --meta still answers DOCTOR
        for address in targets:
            client = pool.get(address)
            try:
                response = await client.call(MessageType.DOCTOR, {}, retries=0)
            except ReproError:
                continue  # dead peer or pre-doctor build
            summaries.extend(
                s
                for s in response.payload.get("incidents", [])  # type: ignore[union-attr]
                if isinstance(s, dict)
            )
            if wanted and bundle is None:
                try:
                    got = await client.call(
                        MessageType.DOCTOR,
                        {"incident_id": wanted},
                        retries=0,
                    )
                except ReproError:
                    continue
                found = got.payload.get("incident")
                if isinstance(found, dict):
                    bundle = found
    finally:
        await pool.close()
    return summaries, bundle


def cmd_doctor(args: argparse.Namespace) -> int:
    from repro.obs import doctor as doctor_mod

    incident_id = getattr(args, "incident_id", None)
    if args.dir:
        bundles = doctor_mod.IncidentStore.load_dir(args.dir)
        summaries = [doctor_mod.summarize(b) for b in bundles]
        bundle = (
            next((b for b in bundles if b.get("id") == incident_id), None)
            if incident_id
            else None
        )
    elif args.meta:
        import asyncio

        summaries, bundle = asyncio.run(_doctor_fetch(args))
    else:
        print(
            "error: doctor requires --meta HOST:PORT or --dir DIR",
            file=sys.stderr,
        )
        return 2
    if args.doctor_command == "list":
        summaries.sort(key=lambda s: float(s.get("t", 0.0)))
        if args.json:
            print(json.dumps(summaries, indent=2, sort_keys=True, default=str))
        else:
            print(doctor_mod.render_incident_list(summaries))
        return 0
    if bundle is None:
        print(f"error: incident {incident_id!r} not found", file=sys.stderr)
        return 1
    if args.doctor_command == "show":
        if args.json:
            print(json.dumps(bundle, indent=2, sort_keys=True, default=str))
        else:
            print(doctor_mod.render_incident(bundle))
        return 0
    print(doctor_mod.explain_incident(bundle))
    return 0


# ----------------------------------------------------------------------
# simulate / evaluate
# ----------------------------------------------------------------------
def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.single_repair import run_degraded_read, run_single_repair
    from repro.fs.cluster import StorageCluster

    code = make_code(args.code)
    rows = []
    for strategy in args.strategies.split(","):
        cluster = StorageCluster.smallsite(
            num_servers=args.servers,
            link_bandwidth=args.bandwidth,
            seed=args.seed,
        )
        stripe = cluster.write_stripe(code, args.chunk_size)
        runner = run_degraded_read if args.degraded else run_single_repair
        result = runner(
            cluster,
            stripe,
            lost_index=args.lost,
            strategy=strategy.strip(),
            num_slices=args.slices,
        )
        rows.append(result)
        print(result.summary())
    if len(rows) == 2:
        reduction = 1 - rows[1].duration / rows[0].duration
        print(f"reduction: {reduction:.1%}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_all

    for result in run_all(quick=not args.full):
        print()
        print(f"=== {result.experiment_id}: {result.title} ===")
        print(result.report)
    return 0


# ----------------------------------------------------------------------
# qos: multi-tenant traffic + SLO verdicts
# ----------------------------------------------------------------------
def _qos_emit(harness, verdicts, args: argparse.Namespace) -> int:
    """Shared tail of both qos modes: table, verdicts, prom, exit code."""
    print(harness.render_table())
    print()
    if not verdicts:
        print("error: no SLO verdicts emitted", file=sys.stderr)
        return 1
    for verdict in verdicts:
        print(verdict.render())
    if args.prom:
        from repro import obs

        harness.publish(obs.registry())
        text = obs.render_prometheus(
            obs.registry().snapshot(), namespace="repro"
        )
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote Prometheus exposition -> {args.prom}")
    if args.strict and not all(v.passed for v in verdicts):
        return 1
    return 0


def cmd_qos(args: argparse.Namespace) -> int:
    from repro.qos.scenario import (
        ScenarioConfig,
        qos_contention_experiment,
        run_scenario,
    )

    if args.live:
        import asyncio

        from repro.qos.scenario import run_live_scenario

        harness, counters = asyncio.run(
            run_live_scenario(
                num_servers=max(6, args.servers),
                repair_rate_limit=float(parse_bandwidth(args.repair_rate))
                if args.repair_rate
                else 0.0,
                seed=args.seed,
            )
        )
        print(
            f"live qos: foreground={counters['foreground']} "
            f"degraded={counters['degraded']} "
            f"repaired={counters['repaired']}"
        )
        return _qos_emit(harness, harness.evaluate(), args)

    config = ScenarioConfig(
        num_servers=args.servers,
        num_stripes=args.stripes,
        chunk_size=args.chunk_size,
        requests_per_second=args.rate,
        num_users=args.users,
        zipf_exponent=args.zipf,
        duration=args.duration,
        kill_at=args.kill_at,
        kill_count=args.kill,
        repair_rate=args.repair_rate,
        repair_burst=args.repair_burst,
        repair_floor=args.repair_floor,
        weighting=args.weighting if args.weighting != "both" else "mppr",
        seed=args.seed,
    )
    if args.weighting == "both":
        result = qos_contention_experiment(config)
        print(result.report)
        return 0
    result = run_scenario(config)
    print(
        f"qos scenario: requests={result.requests_issued} "
        f"(degraded={result.degraded_issued}, "
        f"dropped={result.degraded_dropped}) "
        f"repairs={result.repairs_completed}"
    )
    return _qos_emit(result.harness, result.verdicts, args)


# ----------------------------------------------------------------------
# reliability: years-scale Monte Carlo durability
# ----------------------------------------------------------------------
def cmd_reliability(args: argparse.Namespace) -> int:
    from repro.reliability import (
        Hierarchy,
        ReliabilityConfig,
        ReliabilityEngine,
    )

    hierarchy = Hierarchy(
        racks=args.racks,
        machines_per_rack=args.machines_per_rack,
        disks_per_machine=args.disks_per_machine,
    )
    reports = []
    for scheme in args.scheme.split(","):
        config = ReliabilityConfig(
            code=args.code,
            scheme=scheme.strip(),
            placement=args.placement,
            scatter_width=args.scatter_width,
            num_stripes=args.stripes,
            chunk_size=args.chunk_size,
            hierarchy=hierarchy,
            disk_lifetime=args.disk_lifetime,
            net_bandwidth=args.bandwidth,
            repair_slots=args.repair_slots,
            burst_rate_per_rack_per_year=args.burst_rate,
            horizon_years=args.years,
            trials=args.trials,
            seed=args.seed,
        )
        report = ReliabilityEngine(config).run()
        reports.append(report)
        print(report.render(backlog_chart=args.backlog_chart))
        print()
    if len(reports) > 1:
        base = reports[0]
        base_mttdl = base.mttdl_years()[0]
        for other in reports[1:]:
            ratio = other.mttdl_years()[0] / base_mttdl
            print(
                f"MTTDL {other.scheme} vs {base.scheme}: {ratio:.2f}x "
                f"(repair/chunk {other.per_chunk_repair_hours * 3600:.1f}s "
                f"vs {base.per_chunk_repair_hours * 3600:.1f}s)"
            )
    return 0


# ----------------------------------------------------------------------
# matrix: scheme x code x placement durability sweep
# ----------------------------------------------------------------------
def _split_specs(text: str) -> "tuple":
    """Split a comma list without breaking ``rs(6,3)``-style specs."""
    out: "List[str]" = []
    depth = 0
    current: "List[str]" = []
    for ch in text:
        if ch == "," and depth == 0:
            token = "".join(current).strip()
            if token:
                out.append(token)
            current = []
            continue
        depth += ch == "("
        depth -= ch == ")"
        current.append(ch)
    token = "".join(current).strip()
    if token:
        out.append(token)
    return tuple(out)


def cmd_matrix(args: argparse.Namespace) -> int:
    from repro.redundancy import MatrixConfig, run_matrix

    config = MatrixConfig(
        schemes=_split_specs(args.schemes),
        codes=_split_specs(args.codes),
        placements=_split_specs(args.placements),
        num_stripes=args.stripes,
        trials=args.trials,
        horizon_years=args.years,
        scatter_width=args.scatter_width,
        validate_baseline=not args.no_validate,
        seed=args.seed,
    )
    result = run_matrix(config)
    experiment = result.to_experiment()
    print(experiment.report)
    if args.json:
        payload = {
            "experiment_id": experiment.experiment_id,
            "rows": result.rows(),
        }
        if result.validation is not None:
            v = result.validation
            payload["markov_validation"] = {
                "code": v.code,
                "simulated_mttdl_hours": v.simulated_mttdl_hours,
                "ci_low_hours": v.ci_low_hours,
                "ci_high_hours": v.ci_high_hours,
                "markov_mttdl_hours": v.markov_mttdl_hours,
                "inside_ci": v.inside_ci,
            }
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        print(f"wrote {args.json}")
    if result.validation is not None and not result.validation.inside_ci:
        print("markov validation FAILED: closed form outside simulated CI")
        return 1
    return 0


def _redundancy_epilog() -> str:
    """Registered schemes, codes, and placements for --help epilogs."""
    from repro.fs.placement import available_placements
    from repro.redundancy.models import available_cost_models
    from repro.reliability.engine import SCHEMES

    return (
        "registered schemes:    " + ", ".join(SCHEMES) + "\n"
        "registered codes:      " + ", ".join(available_cost_models())
        + "  (spec e.g. rs(6,3), msr(6,3,8))\n"
        "registered placements: " + ", ".join(available_placements())
    )


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial-Parallel-Repair for erasure-coded storage",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library summary").set_defaults(fn=cmd_info)

    enc = sub.add_parser("encode", help="erasure-code a file into chunks")
    enc.add_argument("input")
    enc.add_argument("--code", default="rs(6,3)")
    enc.add_argument("--out-dir", default="stripe")
    enc.set_defaults(fn=cmd_encode)

    dec = sub.add_parser("decode", help="rebuild the file from chunks")
    dec.add_argument("manifest")
    dec.add_argument("--out", required=True)
    dec.set_defaults(fn=cmd_decode)

    cor = sub.add_parser("corrupt", help="delete a chunk (simulate erasure)")
    cor.add_argument("manifest")
    cor.add_argument("--chunk", type=int, required=True)
    cor.set_defaults(fn=cmd_corrupt)

    rep = sub.add_parser("repair", help="rebuild a missing chunk")
    rep.add_argument("manifest", nargs="?", default=None)
    rep.add_argument("--chunk", type=int, default=-1,
                     help="lost chunk index (--live: auto-detect if omitted)")
    rep.add_argument("--strategy", default="ppr", choices=STRATEGIES)
    rep.add_argument("--live", action="store_true",
                     help="repair over TCP against a live cluster")
    rep.add_argument("--meta", default=None,
                     help="live meta-server address HOST:PORT")
    rep.add_argument("--stripe-id", default=None,
                     help="live stripe id to repair")
    rep.add_argument("--slices", type=int, default=1,
                     help="--live ppr/chain: pipeline each hop as S "
                          "sliced wire-v2 streams (1 = whole-chunk sends)")
    rep.set_defaults(fn=cmd_repair)

    srv = sub.add_parser(
        "serve", help="run live TCP services (meta + chunk servers)"
    )
    srv.add_argument("--role", default="cluster",
                     choices=("cluster", "meta", "chunk"),
                     help="cluster: meta + N chunk servers in one process")
    srv.add_argument("--port", type=int, default=0,
                     help="listen port (0 = ephemeral)")
    srv.add_argument("--servers", type=int, default=6,
                     help="chunk servers in cluster mode")
    srv.add_argument("--meta", default=None,
                     help="meta address (chunk role)")
    srv.add_argument("--id", default="cs-00", help="server id (chunk role)")
    srv.add_argument("--stripe", default=None,
                     help="cluster mode: write a demo stripe, e.g. rs(4,2)")
    srv.add_argument("--kill-index", type=int, default=None,
                     help="cluster mode: kill the host of this chunk index")
    srv.add_argument("--payload-bytes", type=int, default=1152)
    srv.add_argument("--heartbeat-interval", type=float, default=2.0)
    srv.add_argument("--seed", type=int, default=2016)
    srv.add_argument("--collector", action="store_true",
                     help="push telemetry batches to the meta-hosted "
                          "collector on the heartbeat cadence "
                          "(cluster and chunk roles)")
    srv.set_defaults(fn=cmd_serve)

    simp = sub.add_parser("simulate", help="measure a repair on the simulator")
    simp.add_argument("--code", default="rs(6,3)")
    simp.add_argument("--chunk-size", default="64MiB")
    simp.add_argument("--strategies", default="star,ppr",
                      help="comma-separated, run in order")
    simp.add_argument("--servers", type=int, default=16)
    simp.add_argument("--bandwidth", default="1Gbps")
    simp.add_argument("--lost", type=int, default=0)
    simp.add_argument("--slices", type=int, default=1)
    simp.add_argument("--degraded", action="store_true",
                      help="measure a degraded read instead of a repair")
    simp.add_argument("--seed", type=int, default=2016)
    simp.set_defaults(fn=cmd_simulate)

    ev = sub.add_parser("evaluate", help="reproduce every table and figure")
    ev.add_argument("--full", action="store_true",
                    help="more repetitions / larger sweeps")
    ev.set_defaults(fn=cmd_evaluate)

    qos = sub.add_parser(
        "qos",
        help="multi-tenant QoS scenario: Zipf user traffic vs a repair "
             "storm, with token-bucket pacing and SLO verdicts",
    )
    qos.add_argument("--duration", type=float, default=120.0,
                     help="virtual seconds of user arrivals")
    qos.add_argument("--rate", type=float, default=60.0,
                     help="aggregate open-loop requests/second")
    qos.add_argument("--users", type=int, default=100_000,
                     help="logical users behind the Zipf popularity curve")
    qos.add_argument("--zipf", type=float, default=1.1,
                     help="Zipf exponent of user popularity")
    qos.add_argument("--servers", type=int, default=12)
    qos.add_argument("--stripes", type=int, default=12)
    qos.add_argument("--chunk-size", default="16MiB")
    qos.add_argument("--kill", type=int, default=2,
                     help="servers to crash mid-run (the repair storm)")
    qos.add_argument("--kill-at", type=float, default=20.0,
                     help="virtual second of the crash")
    qos.add_argument("--repair-rate", default="250Mbps",
                     help="per-link repair bandwidth cap ('' = no pacing)")
    qos.add_argument("--repair-burst", default="16MiB")
    qos.add_argument("--repair-floor", default="10Mbps",
                     help="repair is never starved below this rate")
    qos.add_argument("--weighting", default="mppr",
                     choices=("mppr", "uniform", "both"),
                     help="'both' prints the side-by-side comparison")
    qos.add_argument("--seed", type=int, default=2016)
    qos.add_argument("--live", action="store_true",
                     help="run the QoS smoke over the live TCP stack")
    qos.add_argument("--strict", action="store_true",
                     help="exit nonzero when any SLO verdict fails")
    qos.add_argument("--prom", default=None,
                     help="write QoS gauges as Prometheus text to FILE")
    qos.set_defaults(fn=cmd_qos)

    rel = sub.add_parser(
        "reliability",
        help="years-scale Monte Carlo durability: MTTDL, P(loss), nines",
        epilog=_redundancy_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    rel.add_argument("--code", default="rs(6,3)",
                     help="code or cost-model spec (see epilog)")
    rel.add_argument("--scheme", default="ppr",
                     help="comma-separated repair schemes (see epilog)")
    rel.add_argument("--placement", default="random",
                     help="stripe placement regime (see epilog)")
    rel.add_argument("--scatter-width", type=int, default=None,
                     help="copyset scatter-width target S "
                          "(default 2*(n-1))")
    rel.add_argument("--trials", type=int, default=10,
                     help="independent Monte Carlo trials")
    rel.add_argument("--years", type=float, default=10.0,
                     help="simulated horizon per trial")
    rel.add_argument("--stripes", type=int, default=10_000,
                     help="stripe population per trial")
    rel.add_argument("--chunk-size", default="64MiB")
    rel.add_argument("--racks", type=int, default=12)
    rel.add_argument("--machines-per-rack", type=int, default=4)
    rel.add_argument("--disks-per-machine", type=int, default=4)
    rel.add_argument("--disk-lifetime", default="exp:3y",
                     help="exp:MEAN or weibull:SCALE:SHAPE (h/d/y units)")
    rel.add_argument("--bandwidth", default="1Gbps",
                     help="network bandwidth for the repair-time model")
    rel.add_argument("--repair-slots", type=int, default=8,
                     help="concurrent disk reconstructions")
    rel.add_argument("--burst-rate", type=float, default=0.5,
                     help="rack-correlated bursts per rack-year")
    rel.add_argument("--seed", type=int, default=2016)
    rel.add_argument("--backlog-chart", action="store_true",
                     help="render the repair-queue depth chart")
    rel.set_defaults(fn=cmd_reliability)

    mat = sub.add_parser(
        "matrix",
        help="redundancy matrix: scheme x code x placement durability",
        epilog=_redundancy_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    mat.add_argument("--schemes", default=",".join(
        ("star", "staggered", "chain", "ppr")),
        help="comma-separated repair schemes (see epilog)")
    mat.add_argument("--codes", default="rs(6,3),lrc(6,2,2),msr(6,3),"
                     "mbr(6,3)",
                     help="comma-separated code/cost-model specs")
    mat.add_argument("--placements", default="random,copyset,pss",
                     help="comma-separated placement regimes")
    mat.add_argument("--stripes", type=int, default=500,
                     help="stripe population per cell trial")
    mat.add_argument("--trials", type=int, default=4,
                     help="Monte Carlo trials per cell")
    mat.add_argument("--years", type=float, default=10.0,
                     help="simulated horizon per trial")
    mat.add_argument("--scatter-width", type=int, default=None,
                     help="copyset scatter-width target S")
    mat.add_argument("--seed", type=int, default=2016)
    mat.add_argument("--no-validate", action="store_true",
                     help="skip the Markov check of the rs/random cell")
    mat.add_argument("--json", default=None,
                     help="also write per-cell rows as JSON to FILE")
    mat.set_defaults(fn=cmd_matrix)

    tr = sub.add_parser(
        "trace", help="record and inspect observability traces"
    )
    trsub = tr.add_subparsers(dest="trace_command", required=True)

    trr = trsub.add_parser(
        "record",
        help="run one repair (sim by default, --live for TCP) "
             "and write a JSONL trace",
    )
    trr.add_argument("--out", default="trace.jsonl",
                     help="output JSONL path")
    trr.add_argument("--strategy", default="ppr", choices=STRATEGIES)
    trr.add_argument("--code", default="rs(6,3)")
    trr.add_argument("--chunk-size", default="64MiB")
    trr.add_argument("--servers", type=int, default=16)
    trr.add_argument("--bandwidth", default="1Gbps")
    trr.add_argument("--lost", type=int, default=0)
    trr.add_argument("--slices", type=int, default=1)
    trr.add_argument("--seed", type=int, default=2016)
    trr.add_argument("--sample-interval", type=float, default=0.05,
                     help="sim telemetry sampling interval, virtual seconds")
    trr.add_argument("--live", action="store_true",
                     help="record a live TCP repair instead of a sim one")
    trr.add_argument("--meta", default=None,
                     help="live meta-server address HOST:PORT")
    trr.add_argument("--stripe-id", default=None,
                     help="live stripe id to repair")
    trr.add_argument("--chunk", type=int, default=-1,
                     help="lost chunk index (--live: auto-detect if omitted)")
    trr.add_argument("--profile", default=None, metavar="FILE",
                     help="also write a collapsed-stack CPU profile "
                          "(sim: virtual-clock event attribution; "
                          "--live: wall-clock sampling) for flame graphs")
    trr.set_defaults(fn=cmd_trace)

    trc = trsub.add_parser(
        "convert", help="convert a JSONL trace to Chrome/Perfetto JSON"
    )
    trc.add_argument("trace", help="input JSONL trace")
    trc.add_argument("--out", default="trace.chrome.json")
    trc.set_defaults(fn=cmd_trace)

    trt = trsub.add_parser("timeline", help="print an ASCII timeline")
    trt.add_argument("trace", help="input JSONL trace")
    trt.add_argument("--width", type=int, default=60)
    trt.set_defaults(fn=cmd_trace)

    trs = trsub.add_parser(
        "summary", help="aggregate per-span-name durations and metrics"
    )
    trs.add_argument("trace", help="input JSONL trace")
    trs.set_defaults(fn=cmd_trace)

    trp = trsub.add_parser(
        "prom",
        help="render a trace's metrics in Prometheus text format",
    )
    trp.add_argument("trace", help="input JSONL trace")
    trp.add_argument("--out", default=None,
                     help="write to a file instead of stdout")
    trp.add_argument("--namespace", default="repro",
                     help="metric name prefix (default: repro)")
    trp.set_defaults(fn=cmd_trace)

    trcp = trsub.add_parser(
        "critical-path",
        help="stitch a trace into causal repair DAGs and print each "
             "observed critical path",
    )
    trcp.add_argument("trace", help="input JSONL trace")
    trcp.add_argument("--width", type=int, default=32,
                      help="attribution bar-chart width")
    trcp.set_defaults(fn=cmd_trace)

    trcf = trsub.add_parser(
        "conform",
        help="check observed critical paths against the paper's "
             "Eq. 1 / Theorem 1 predictions (exit 1 on violation)",
    )
    trcf.add_argument("trace", help="input JSONL trace")
    trcf.add_argument("--tolerance", type=float, default=0.25,
                      help="relative tolerance for timing checks")
    trcf.set_defaults(fn=cmd_trace)

    top = sub.add_parser(
        "top",
        help="live cluster dashboard: poll STATS/HEALTH and render "
             "an ANSI fleet view (or replay a recorded trace)",
    )
    top.add_argument("--meta", default=None,
                     help="live meta-server address HOST:PORT")
    top.add_argument("--replay", default=None,
                     help="render one frame from a recorded JSONL trace")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period, seconds")
    top.add_argument("--iterations", type=int, default=0,
                     help="number of frames (0 = until interrupted)")
    top.add_argument("--no-color", action="store_true",
                     help="plain ASCII output (no ANSI escapes)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--json", action="store_true",
                     help="emit one machine-readable JSON snapshot "
                          "(fleet, series, incidents) and exit; "
                          "implies --once")
    top.add_argument("--collector", action="store_true",
                     help="render the fleet from the meta-hosted "
                          "telemetry collector in a single "
                          "COLLECTOR_QUERY RPC (no per-node polling; "
                          "nodes must run with collector_enabled)")
    top.set_defaults(fn=cmd_top)

    qry = sub.add_parser(
        "query",
        help="query the fleet telemetry collector: per-series windows "
             "by retention tier, fleet rollups, Prometheus exposition",
    )
    qry.add_argument("--meta", required=True,
                     help="live meta-server address HOST:PORT")
    qry.add_argument("--metric", default=None,
                     help="exact metric name (default: all)")
    qry.add_argument("--label", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="label filter, repeatable (subset match)")
    qry.add_argument("--tier", default="raw",
                     help="retention tier: raw, 10s or 60s")
    qry.add_argument("--start", type=float, default=None,
                     help="window start (inclusive, epoch seconds)")
    qry.add_argument("--end", type=float, default=None,
                     help="window end (inclusive, epoch seconds)")
    qry.add_argument("--fleet", action="store_true",
                     help="cross-node rollups + merged histograms (JSON)")
    qry.add_argument("--stats", action="store_true",
                     help="collector ingest/retention counters (JSON)")
    qry.add_argument("--prom", action="store_true",
                     help="Prometheus federation-style exposition of "
                          "the whole fleet")
    qry.add_argument("--json", action="store_true",
                     help="emit raw JSON instead of rendered text")
    qry.set_defaults(fn=cmd_query)

    doc = sub.add_parser(
        "doctor",
        help="incident bundles from the fleet's anomaly detectors: "
             "list, show, explain",
    )
    docsub = doc.add_subparsers(dest="doctor_command", required=True)
    for name, doc_help, takes_id in (
        ("list", "one-line summary of every retained incident", False),
        ("show", "full rendering of one incident bundle", True),
        ("explain", "plain-English diagnosis of one incident", True),
    ):
        docp = docsub.add_parser(name, help=doc_help)
        if takes_id:
            docp.add_argument("incident_id", help="incident id to inspect")
        docp.add_argument("--meta", default=None,
                          help="poll a live fleet's DOCTOR endpoints "
                               "via this meta-server HOST:PORT")
        docp.add_argument("--dir", default=None,
                          help="read incident-*.json bundles from a "
                               "directory instead (LiveConfig.incident_dir)")
        docp.add_argument("--json", action="store_true",
                          help="emit JSON instead of rendered text")
        docp.set_defaults(fn=cmd_doctor)
    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
