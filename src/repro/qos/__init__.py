"""Multi-tenant QoS: traffic classes, admission control, SLO harness.

The paper's Fig 8/9 axis is *what repair traffic does to foreground
reads* and how m-PPR's scheduling weights (Eqs. 2-3) mitigate it.  This
package makes that axis measurable at scale:

* :mod:`repro.qos.population` — a Zipf-skewed open-loop client
  population (millions of logical users, vectorized numpy arrival
  generation) emitting normal and degraded reads against the simulator.
* :mod:`repro.qos.admission` — per-link token buckets and the two-class
  (foreground vs repair) priority policy plugged into both the sim
  network and the live chunk-server send paths.
* :mod:`repro.qos.slo` — streaming per-class latency quantiles
  (p50/p95/p99/p99.9) with pass/fail SLO verdicts.
* :mod:`repro.qos.scenario` — the repair-under-foreground-load
  contention scenario behind ``repro qos`` and ``BENCH_fig8_qos``.
"""

from repro.qos.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.qos.slo import (
    LatencyReservoir,
    SLOHarness,
    SLOTarget,
    SLOVerdict,
)
from repro.qos.population import ClientPopulation, PopulationConfig
from repro.qos.scenario import (
    ScenarioConfig,
    ScenarioResult,
    compare_weighting,
    qos_contention_experiment,
    run_scenario,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
    "LatencyReservoir",
    "SLOHarness",
    "SLOTarget",
    "SLOVerdict",
    "ClientPopulation",
    "PopulationConfig",
    "ScenarioConfig",
    "ScenarioResult",
    "compare_weighting",
    "qos_contention_experiment",
    "run_scenario",
]
