"""Admission control: token buckets and the two-class priority policy.

Repair traffic is throughput work; foreground reads are latency work.
The classic production compromise (and the regime the paper's Fig 8
measures) is to cap repair bandwidth per link so reconstruction makes
steady progress without monopolizing the fabric.  This module provides
the mechanism for both stacks:

* :class:`TokenBucket` — a clock-agnostic pacer.  Callers pass ``now``
  explicitly, so the same class runs on virtual time inside the
  simulator and on the wall clock inside a live chunk server.
* :class:`AdmissionController` — per-link buckets plus the class
  policy: *foreground and degraded reads are never delayed* (strict
  priority for user-facing traffic), repair-class transfers are paced
  at a configurable cap, clamped to a floor so repair can never be
  starved outright.

Once admitted, flows of every class share the same max-min fair-share
computation (:mod:`repro.sim.network`) — admission shapes *when* repair
bytes enter the fabric, not how links arbitrate among active flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.units import parse_bandwidth, parse_size

#: Traffic class names used across sim and live stacks.
FOREGROUND = "foreground"
DEGRADED = "degraded"
REPAIR = "repair"

TRAFFIC_CLASSES: "Tuple[str, ...]" = (FOREGROUND, DEGRADED, REPAIR)


class TokenBucket:
    """A token-bucket pacer over an externally supplied clock.

    ``reserve(nbytes, now)`` debits the bucket and returns how long the
    caller must wait before putting those bytes on the wire.  The
    balance may go negative (the *debt* of reservations not yet
    admitted); the returned delay is exactly the time for the refill to
    pay the debt back to zero.  This gives the pacer invariant the
    property tests pin down: for reservations made in time order, the
    bytes admitted (delay elapsed) by any instant ``T`` never exceed
    ``burst + rate * (T - first_reserve_time)``.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: "float | str", burst: "float | str"):
        self.rate = float(parse_bandwidth(rate))
        self.burst = float(parse_size(burst))
        if self.rate <= 0:
            raise ConfigurationError("token bucket rate must be > 0")
        if self.burst <= 0:
            raise ConfigurationError("token bucket burst must be > 0")
        self.tokens = self.burst
        self._last: "Optional[float]" = None

    def _refill(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + self.rate * elapsed)
            self._last = now
        # Clocks that step backwards (live mode NTP jitter) just skip
        # the refill rather than minting negative time.

    def reserve(self, nbytes: float, now: float) -> float:
        """Debit ``nbytes``; return the delay before they may be sent."""
        if nbytes < 0:
            raise ConfigurationError("cannot reserve negative bytes")
        self._refill(now)
        self.tokens -= nbytes
        if self.tokens >= 0.0:
            return 0.0
        return -self.tokens / self.rate

    def occupancy(self, now: "Optional[float]" = None) -> float:
        """Fraction of the burst currently available, in [0, 1]."""
        if now is not None:
            self._refill(now)
        return max(0.0, self.tokens) / self.burst


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the two-class policy (units accept "250Mbps" strings)."""

    #: Per-link cap on repair-class bandwidth.
    repair_rate: "float | str" = "250Mbps"
    #: Per-link burst allowance: short repair bursts ride for free.
    repair_burst: "float | str" = "16MiB"
    #: The cap is clamped to at least this, so repair is never starved
    #: below a guaranteed floor regardless of how low the cap is set.
    repair_floor: "float | str" = "10Mbps"
    #: Classes subject to pacing.  Foreground and degraded reads are
    #: user-facing and always pass through undelayed.
    paced_classes: "Tuple[str, ...]" = (REPAIR,)

    def effective_rate(self) -> float:
        """The configured cap clamped up to the floor, bytes/second."""
        return max(
            float(parse_bandwidth(self.repair_rate)),
            float(parse_bandwidth(self.repair_floor)),
        )


class AdmissionController:
    """Per-link token buckets keyed by link name.

    The sim's :class:`~repro.sim.network.FlowNetwork` consults
    :meth:`delay` at flow start; a positive return parks the flow until
    the bucket pays out (queueing time still counts against the flow's
    latency, because repair progress deferred is repair latency).
    """

    def __init__(self, config: "Optional[AdmissionConfig]" = None):
        self.config = config or AdmissionConfig()
        self._rate = self.config.effective_rate()
        self._burst = float(parse_size(self.config.repair_burst))
        self.buckets: "Dict[str, TokenBucket]" = {}
        #: Accounting: admitted bytes per class, pacing totals.
        self.bytes_admitted: "Dict[str, float]" = {}
        self.flows_delayed = 0
        self.total_queue_delay = 0.0

    def bucket(self, link_name: str) -> TokenBucket:
        bucket = self.buckets.get(link_name)
        if bucket is None:
            bucket = TokenBucket(self._rate, self._burst)
            self.buckets[link_name] = bucket
        return bucket

    def delay(
        self, link_name: str, traffic_class: str, nbytes: float, now: float
    ) -> float:
        """Seconds this transfer must wait before entering the fabric."""
        self.bytes_admitted[traffic_class] = (
            self.bytes_admitted.get(traffic_class, 0.0) + nbytes
        )
        if traffic_class not in self.config.paced_classes:
            return 0.0
        wait = self.bucket(link_name).reserve(nbytes, now)
        if wait > 0.0:
            self.flows_delayed += 1
            self.total_queue_delay += wait
        return wait

    def mean_occupancy(self) -> float:
        """Average bucket occupancy across links (1.0 when no buckets)."""
        if not self.buckets:
            return 1.0
        return sum(b.occupancy() for b in self.buckets.values()) / len(
            self.buckets
        )
