"""SLO harness: streaming per-class tail latency with pass/fail verdicts.

Latency distributions are kept two ways, both bounded:

* an obs :class:`~repro.obs.metrics.Histogram` with fine log-spaced
  buckets (the streaming view — what a live server would export), and
* a :class:`LatencyReservoir` (deterministic Algorithm R) holding up to
  ``capacity`` raw samples for exact quantiles.

Quantiles come from the reservoir while it still holds *every* sample
(exact, and what the deterministic-scenario tests fingerprint) and fall
back to histogram interpolation once sampling has kicked in.  Verdicts
compare an observed quantile per traffic class against an
:class:`SLOTarget` threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram, MetricsRegistry


def _qos_buckets() -> "Tuple[float, ...]":
    """Log-spaced latency buckets, ~19% apart from 1 ms to ~2 min.

    Fine enough that interpolated p99.9 estimates stay within one
    bucket ratio of the true value even for heavy-tailed scenarios.
    """
    bounds: "List[float]" = []
    value = 0.001
    while value < 130.0:
        bounds.append(round(value, 6))
        value *= 1.1885
    return tuple(bounds)


#: Bucket bounds shared by every QoS histogram.
QOS_BUCKETS: "Tuple[float, ...]" = _qos_buckets()

#: Quantiles every stats row reports, keyed by their display name.
REPORTED_QUANTILES: "Tuple[Tuple[str, float], ...]" = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)


class LatencyReservoir:
    """Bounded sample store: exact count/sum/min/max, Algorithm R body.

    Replaces the unbounded ``List[float]`` latency logs the workload
    generators used to keep.  Iteration and truthiness mirror a plain
    list of the retained samples, so existing ``assert gen.latencies``
    style call sites keep working.  The replacement choice uses a
    private seeded generator, so a given insertion sequence always
    retains the same samples — determinism the scenario fingerprint
    tests rely on.
    """

    __slots__ = ("capacity", "count", "sum", "min", "max", "_samples", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0x51_05):
        if capacity < 1:
            raise ConfigurationError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.sum = 0.0
        self.min: "Optional[float]" = None
        self.max: "Optional[float]" = None
        self._samples: "List[float]" = []
        self._rng = np.random.default_rng(seed)

    def append(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = int(self._rng.integers(0, self.count))
        if slot < self.capacity:
            self._samples[slot] = value

    # -- list-like surface ---------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    def __iter__(self) -> "Iterator[float]":
        return iter(self._samples)

    @property
    def exact(self) -> bool:
        """True while every observed sample is still retained."""
        return self.count == len(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> "Optional[float]":
        if not self._samples:
            return None
        return float(np.quantile(np.asarray(self._samples), q))


@dataclass(frozen=True)
class SLOTarget:
    """One objective: ``quantile`` of ``traffic_class`` under ``threshold_s``."""

    traffic_class: str
    quantile: float
    threshold_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ConfigurationError("SLO quantile must be in (0, 1)")
        if self.threshold_s <= 0:
            raise ConfigurationError("SLO threshold must be > 0")

    @property
    def label(self) -> str:
        pct = self.quantile * 100.0
        text = f"{pct:.4g}"
        if "." in text:
            text = text.rstrip("0").rstrip(".")
        return f"{self.traffic_class} p{text}"


@dataclass
class SLOVerdict:
    """Evaluation of one target against the observed distribution."""

    target: SLOTarget
    observed_s: "Optional[float]"
    samples: int
    passed: bool

    def render(self) -> str:
        if self.observed_s is None:
            return f"{self.target.label}: NO DATA"
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{self.target.label}: {self.observed_s * 1e3:.1f}ms "
            f"{'<=' if self.passed else '>'} "
            f"{self.target.threshold_s * 1e3:.1f}ms "
            f"[{status}] ({self.samples} samples)"
        )


class SLOHarness:
    """Per-traffic-class latency tracking plus SLO evaluation."""

    def __init__(
        self,
        targets: "Sequence[SLOTarget]" = (),
        capacity: int = 8192,
    ):
        self.targets = list(targets)
        self.capacity = capacity
        self._hist: "Dict[str, Histogram]" = {}
        self._reservoir: "Dict[str, LatencyReservoir]" = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, traffic_class: str, latency_s: float) -> None:
        hist = self._hist.get(traffic_class)
        if hist is None:
            hist = Histogram(
                "qos.latency", {"class": traffic_class}, QOS_BUCKETS
            )
            self._hist[traffic_class] = hist
            self._reservoir[traffic_class] = LatencyReservoir(self.capacity)
        hist.observe(latency_s)
        self._reservoir[traffic_class].append(latency_s)

    def classes(self) -> "List[str]":
        return sorted(self._hist)

    def count(self, traffic_class: str) -> int:
        hist = self._hist.get(traffic_class)
        return hist.count if hist is not None else 0

    # ------------------------------------------------------------------
    # Quantiles and stats
    # ------------------------------------------------------------------
    def quantile(self, traffic_class: str, q: float) -> "Optional[float]":
        reservoir = self._reservoir.get(traffic_class)
        if reservoir is None or reservoir.count == 0:
            return None
        if reservoir.exact:
            return reservoir.quantile(q)
        return self._hist[traffic_class].quantile(q)

    def stats(self, traffic_class: str) -> "Dict[str, float]":
        """count/mean/min/max plus every reported quantile (0.0 if empty)."""
        hist = self._hist.get(traffic_class)
        row: "Dict[str, float]" = {
            "count": float(hist.count) if hist else 0.0,
            "mean_s": hist.mean if hist else 0.0,
            "min_s": float(hist.min or 0.0) if hist else 0.0,
            "max_s": float(hist.max or 0.0) if hist else 0.0,
        }
        for name, q in REPORTED_QUANTILES:
            value = self.quantile(traffic_class, q)
            row[f"{name}_s"] = float(value) if value is not None else 0.0
        return row

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def evaluate(self) -> "List[SLOVerdict]":
        verdicts: "List[SLOVerdict]" = []
        for target in self.targets:
            observed = self.quantile(target.traffic_class, target.quantile)
            samples = self.count(target.traffic_class)
            passed = observed is not None and observed <= target.threshold_s
            verdicts.append(
                SLOVerdict(
                    target=target,
                    observed_s=observed,
                    samples=samples,
                    passed=passed,
                )
            )
        return verdicts

    def render_table(self) -> str:
        """Per-class latency table: the ``repro qos`` output body."""
        from repro.analysis.render import Table

        table = Table(
            ["class", "count", "mean", "p50", "p95", "p99", "p99.9", "max"],
            title="Per-class latency",
        )
        for cls in self.classes():
            row = self.stats(cls)
            table.add_row(
                cls,
                int(row["count"]),
                f"{row['mean_s'] * 1e3:.1f}ms",
                f"{row['p50_s'] * 1e3:.1f}ms",
                f"{row['p95_s'] * 1e3:.1f}ms",
                f"{row['p99_s'] * 1e3:.1f}ms",
                f"{row['p999_s'] * 1e3:.1f}ms",
                f"{row['max_s'] * 1e3:.1f}ms",
            )
        return table.render()

    # ------------------------------------------------------------------
    # Export (promexport / repro top pick these up from the registry)
    # ------------------------------------------------------------------
    def publish(self, registry: MetricsRegistry) -> None:
        """Mirror stats and verdicts as registry gauges.

        Gauge families: ``qos.latency.<quantile>{class=...}`` in seconds,
        ``qos.requests{class=...}``, and ``qos.slo.compliant{slo=...}``
        (1.0 pass / 0.0 fail).
        """
        for cls in self.classes():
            row = self.stats(cls)
            registry.gauge("qos.requests", **{"class": cls}).set(row["count"])
            for name, _q in REPORTED_QUANTILES:
                registry.gauge(
                    f"qos.latency.{name}", **{"class": cls}
                ).set(row[f"{name}_s"])
        for verdict in self.evaluate():
            registry.gauge(
                "qos.slo.compliant", slo=verdict.target.label
            ).set(1.0 if verdict.passed else 0.0)

    def record_compliance(self, store: "Any", now: float) -> "List[SLOVerdict]":
        """Append current verdicts to a time-series store and return them.

        One ``qos.slo.compliant{slo=<label>}`` sample per target (1.0
        pass / 0.0 fail) — the trailing series the doctor's
        :class:`~repro.obs.anomaly.SLOBurnRateDetector` computes burn
        rate over.  ``store`` is a
        :class:`~repro.obs.timeseries.TimeSeriesStore`.
        """
        verdicts = self.evaluate()
        for verdict in verdicts:
            store.record(
                "qos.slo.compliant",
                now,
                1.0 if verdict.passed else 0.0,
                slo=verdict.target.label,
            )
        return verdicts
