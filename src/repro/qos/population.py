"""A scalable open-loop client population over the simulator.

:class:`ClientPopulation` models millions of logical users issuing
Zipf-skewed reads against the stored chunk catalog.  Arrivals are
*open-loop* (a Poisson process at a configured aggregate rate — queueing
delay never throttles demand, exactly the regime where repair-induced
contention shows up as tail latency) and generated in vectorized numpy
batches: one ``batch_window`` of traffic is a single Poisson draw plus a
``searchsorted`` over the precomputed user-popularity CDF, so generating
10^5-10^6 requests/second of arrivals costs a handful of array
operations, not per-request Python work.

Each request resolves against the meta-server:

* chunk hosted by a live server — a normal **foreground** read (bumps
  the server's ``user_load_bytes``, the input to m-PPR's Eqs. 2-3,
  warms the LRU cache, moves the bytes to a client over the shared
  fabric);
* chunk currently missing (its host failed) — a **degraded** read
  scheduled through the Repair-Manager, competing with background
  repair for helpers and links.

Completed requests report their latency — including any queueing — to
an :class:`~repro.qos.slo.SLOHarness` under their traffic class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

import numpy as np

from collections import deque

from repro.errors import ConfigurationError
from repro.qos import admission as qos_classes
from repro.util.rng import make_rng
from repro.util.units import parse_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster
    from repro.qos.slo import SLOHarness


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the client population."""

    #: Logical users; popularity is Zipf over their ranks.
    num_users: int = 1_000_000
    #: Aggregate open-loop arrival rate, requests/second.
    requests_per_second: float = 100.0
    #: Zipf skew exponent (s in rank^-s); higher = hotter head.
    zipf_exponent: float = 1.1
    #: Bytes a foreground read actually transfers (capped at the chunk
    #: size).  User reads touch a byte range, not the whole chunk; a
    #: degraded read still reconstructs the full chunk.
    read_size: "float | str" = "1MiB"
    #: Virtual seconds of arrivals generated per vectorized batch.
    batch_window: float = 0.25
    #: Concurrent degraded reads; excess arrivals queue FIFO (their
    #: queue wait counts against degraded-read latency).
    max_degraded_inflight: int = 4
    #: ``user_load_bytes`` halves every this many virtual seconds.
    load_decay_interval: float = 10.0
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError("num_users must be >= 1")
        if self.requests_per_second <= 0:
            raise ConfigurationError("requests_per_second must be > 0")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be > 0")
        if self.batch_window <= 0:
            raise ConfigurationError("batch_window must be > 0")
        if self.max_degraded_inflight < 1:
            raise ConfigurationError("max_degraded_inflight must be >= 1")
        if float(parse_size(self.read_size)) <= 0:
            raise ConfigurationError("read_size must be > 0")


class ClientPopulation:
    """Zipf-skewed open-loop traffic against a :class:`StorageCluster`."""

    def __init__(
        self,
        cluster: "StorageCluster",
        config: "Optional[PopulationConfig]" = None,
        harness: "Optional[SLOHarness]" = None,
    ):
        self.cluster = cluster
        self.config = config or PopulationConfig()
        self.harness = harness
        self.rng = make_rng(self.config.seed)
        #: Zipf CDF over user ranks; built lazily on first batch so the
        #: population can be constructed before stripes are written.
        self._cdf: "Optional[np.ndarray]" = None
        self._chunk_ids: "List[str]" = []
        self._running = False
        self._client_cursor = 0
        # Counters.
        self.requests_issued = 0
        self.foreground_issued = 0
        self.degraded_issued = 0
        self.degraded_dropped = 0
        self._degraded_inflight = 0
        self._degraded_queue: "Deque[Tuple[str, float]]" = deque()

    # ------------------------------------------------------------------
    # Vectorized arrival generation (pure numpy; no simulator needed)
    # ------------------------------------------------------------------
    def _ensure_catalog(self) -> bool:
        chunk_ids = sorted(self.cluster.metaserver.chunk_locations)
        if not chunk_ids:
            return False
        if chunk_ids != self._chunk_ids:
            self._chunk_ids = chunk_ids
        if self._cdf is None:
            ranks = np.arange(1, self.config.num_users + 1, dtype=np.float64)
            weights = ranks ** (-self.config.zipf_exponent)
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf = cdf
        return True

    def generate_batch(
        self, window: "Optional[float]" = None
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """One window of arrivals: ``(offsets_s, chunk_indices)``.

        Both arrays have one entry per request; ``offsets_s`` is sorted
        within ``[0, window)``.  This is the scalability path: the cost
        is O(requests) numpy work with no Python-level per-request loop,
        so a 10^6 req/s rate over a one-second window is a single call.
        """
        if not self._ensure_catalog():
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        window = float(window if window is not None else self.config.batch_window)
        count = int(
            self.rng.poisson(self.config.requests_per_second * window)
        )
        if count == 0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        offsets = np.sort(self.rng.random(count)) * window
        assert self._cdf is not None
        users = np.searchsorted(self._cdf, self.rng.random(count))
        # Hot users rendezvous on hot chunks: rank r reads chunk r mod N,
        # so the head of the user distribution concentrates on the head
        # of the (sorted) chunk catalog.
        chunks = users % len(self._chunk_ids)
        return offsets, chunks.astype(np.int64)

    # ------------------------------------------------------------------
    # Simulator attachment
    # ------------------------------------------------------------------
    def start(self, duration: float) -> None:
        """Issue arrivals over ``[now, now + duration)`` virtual seconds."""
        self._running = True
        end_time = self.cluster.sim.now + float(duration)
        self.cluster.sim.schedule(0.0, self._batch_tick, end_time)
        self.cluster.sim.schedule(
            self.config.load_decay_interval, self._decay
        )

    def stop(self) -> None:
        self._running = False

    def _batch_tick(self, end_time: float) -> None:
        if not self._running:
            return
        now = self.cluster.sim.now
        if now >= end_time:
            return
        window = min(self.config.batch_window, end_time - now)
        offsets, chunks = self.generate_batch(window)
        for offset, chunk_index in zip(offsets, chunks):
            self.cluster.sim.schedule(
                float(offset), self._issue, int(chunk_index)
            )
        self.cluster.sim.schedule(window, self._batch_tick, end_time)

    def _next_client(self) -> str:
        clients = self.cluster.client_ids
        self._client_cursor = (self._client_cursor + 1) % len(clients)
        return clients[self._client_cursor]

    def _observe(self, traffic_class: str, latency: float) -> None:
        if self.harness is not None:
            self.harness.observe(traffic_class, latency)

    def _issue(self, chunk_index: int) -> None:
        if not self._running or chunk_index >= len(self._chunk_ids):
            return
        chunk_id = self._chunk_ids[chunk_index]
        host = self.cluster.metaserver.locate_chunk(chunk_id)
        self.requests_issued += 1
        if host is None:
            self._enqueue_degraded(chunk_id)
            return
        self._serve_foreground(chunk_id, host, self.cluster.sim.now)

    def _serve_foreground(
        self, chunk_id: str, host: str, arrival: float
    ) -> None:
        server = self.cluster.servers[host]
        stripe = self.cluster.metaserver.stripe_for_chunk(chunk_id)
        nbytes = min(
            float(parse_size(self.config.read_size)), stripe.chunk_size
        )
        server.user_load_bytes += nbytes
        if not server.lookup_cache(chunk_id):
            server.disk.read(nbytes)
            server.fill_cache(chunk_id)
        self.foreground_issued += 1
        self.cluster.start_flow(
            host,
            self._next_client(),
            nbytes,
            lambda _f, s=arrival: self._observe(
                qos_classes.FOREGROUND, self.cluster.sim.now - s
            ),
            traffic_class=qos_classes.FOREGROUND,
        )

    # ------------------------------------------------------------------
    # Degraded reads
    # ------------------------------------------------------------------
    def _enqueue_degraded(self, chunk_id: str) -> None:
        self._degraded_queue.append((chunk_id, self.cluster.sim.now))
        self._pump_degraded()

    def _pump_degraded(self) -> None:
        while (
            self._degraded_queue
            and self._degraded_inflight < self.config.max_degraded_inflight
        ):
            chunk_id, arrival = self._degraded_queue.popleft()
            self._start_degraded(chunk_id, arrival)

    def _start_degraded(self, chunk_id: str, arrival: float) -> None:
        from repro.errors import ReproError

        meta = self.cluster.metaserver
        host = meta.locate_chunk(chunk_id)
        if host is not None:
            # Repaired while queued: serve it as a plain foreground read
            # whose latency still includes the time spent queued.
            self._serve_foreground(chunk_id, host, arrival)
            return
        stripe = meta.stripe_for_chunk(chunk_id)
        lost_index = stripe.chunk_index(chunk_id)
        self.degraded_issued += 1
        self._degraded_inflight += 1

        def on_complete(_result) -> None:
            self._degraded_inflight -= 1
            self._observe(
                qos_classes.DEGRADED, self.cluster.sim.now - arrival
            )
            self._pump_degraded()

        try:
            meta.repair_manager.start_degraded_read(
                stripe,
                lost_index,
                self._next_client(),
                on_complete=on_complete,
            )
        except ReproError:
            # No viable helpers right now (e.g. several hosts down at
            # once); count the drop rather than wedging the pump.
            self._degraded_inflight -= 1
            self.degraded_issued -= 1
            self.degraded_dropped += 1

    # ------------------------------------------------------------------
    # Load decay (same sliding-window semantics as workloads.userload)
    # ------------------------------------------------------------------
    def _decay(self) -> None:
        if not self._running:
            return
        for server in self.cluster.servers.values():
            server.user_load_bytes *= 0.5
        self.cluster.sim.schedule(
            self.config.load_decay_interval, self._decay
        )
