"""End-to-end QoS scenarios: repair storms under multi-tenant load.

One :func:`run_scenario` call builds a cluster, writes stripes, starts a
Zipf-skewed open-loop :class:`~repro.qos.population.ClientPopulation`,
crashes servers mid-run (the repair storm), and lets the Repair-Manager
rebuild everything while foreground and degraded reads compete for the
same links.  Repair traffic is paced by the token-bucket admission
controller; the :class:`~repro.qos.slo.SLOHarness` collects per-class
tail latency and renders SLO verdicts.

:func:`compare_weighting` runs the identical scenario twice — m-PPR
Eqs. (2)/(3) weighting vs a load-blind "uniform" baseline — which is the
paper's Fig. 8/9 story: weighting steers repair work away from servers
hot with user reads, cutting the p99 of user-facing latency during the
storm.  :func:`qos_contention_experiment` wraps that comparison as an
:class:`~repro.analysis.experiments.ExperimentResult` for the CLI and
the perf gate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.qos.admission import (
    DEGRADED,
    FOREGROUND,
    REPAIR,
    AdmissionConfig,
    TRAFFIC_CLASSES,
)
from repro.qos.population import ClientPopulation, PopulationConfig
from repro.qos.slo import SLOHarness, SLOTarget, SLOVerdict

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


@dataclass(frozen=True)
class ScenarioConfig:
    """One QoS scenario: cluster + workload + storm + objectives."""

    # Cluster / data layout.
    num_servers: int = 12
    num_clients: int = 4
    k: int = 4
    m: int = 2
    num_stripes: int = 12
    chunk_size: str = "16MiB"
    #: Short heartbeats so m-PPR's load view tracks the storm.
    heartbeat_interval: float = 1.0
    # Workload.
    requests_per_second: float = 60.0
    num_users: int = 100_000
    zipf_exponent: float = 1.1
    read_size: str = "1MiB"
    duration: float = 120.0
    #: Extra virtual seconds after the arrival window for queued degraded
    #: reads and repairs to finish before stats are read.
    drain_grace: float = 120.0
    # The repair storm.
    kill_at: float = 20.0
    kill_count: int = 2
    # Admission control ("" disables pacing entirely).
    repair_rate: str = "250Mbps"
    repair_burst: str = "16MiB"
    repair_floor: str = "10Mbps"
    # Scheduling.
    weighting: str = "mppr"
    strategy: str = "ppr"
    seed: int = 2016
    # Objectives (seconds); <= 0 drops the target.
    slo_foreground_p99_s: float = 2.5
    slo_degraded_p99_s: float = 30.0
    slo_degraded_p999_s: float = 60.0

    def __post_init__(self) -> None:
        if self.num_servers < self.k + self.m + 1:
            raise ConfigurationError(
                "num_servers must exceed the stripe width k+m"
            )
        if self.num_stripes < 1:
            raise ConfigurationError("num_stripes must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if not 0.0 <= self.kill_at < self.duration:
            raise ConfigurationError("kill_at must fall inside the run")
        if self.kill_count < 0:
            raise ConfigurationError("kill_count must be >= 0")

    def slo_targets(self) -> "List[SLOTarget]":
        targets: "List[SLOTarget]" = []
        if self.slo_foreground_p99_s > 0:
            targets.append(
                SLOTarget(FOREGROUND, 0.99, self.slo_foreground_p99_s)
            )
        if self.slo_degraded_p99_s > 0:
            targets.append(SLOTarget(DEGRADED, 0.99, self.slo_degraded_p99_s))
        if self.slo_degraded_p999_s > 0:
            targets.append(
                SLOTarget(DEGRADED, 0.999, self.slo_degraded_p999_s)
            )
        return targets

    def admission_config(self) -> "Optional[AdmissionConfig]":
        if not self.repair_rate:
            return None
        return AdmissionConfig(
            repair_rate=self.repair_rate,
            repair_burst=self.repair_burst,
            repair_floor=self.repair_floor,
        )


@dataclass
class ScenarioResult:
    """Everything a scenario run measured."""

    config: ScenarioConfig
    harness: SLOHarness
    class_stats: "Dict[str, Dict[str, float]]"
    verdicts: "List[SLOVerdict]"
    requests_issued: int
    foreground_issued: int
    degraded_issued: int
    degraded_dropped: int
    repairs_completed: int
    repairs_failed: int
    repairs_verified: int
    class_bytes: "Dict[str, float]"
    admission_stats: "Dict[str, float]" = field(default_factory=dict)

    @property
    def slo_pass(self) -> bool:
        return all(v.passed for v in self.verdicts)

    def quantile(self, traffic_class: str, q: float) -> "Optional[float]":
        return self.harness.quantile(traffic_class, q)

    def fingerprint(self) -> str:
        """Stable digest of every measurement; equal runs hash equal.

        Floats are rounded to 9 significant decimals before hashing so
        the digest captures the simulation outcome, not formatting.
        """

        def clean(value: object) -> object:
            if isinstance(value, float):
                return round(value, 9)
            if isinstance(value, dict):
                return {k: clean(v) for k, v in sorted(value.items())}
            return value

        blob = {
            "stats": clean(self.class_stats),
            "bytes": clean(self.class_bytes),
            "admission": clean(self.admission_stats),
            "counters": [
                self.requests_issued,
                self.foreground_issued,
                self.degraded_issued,
                self.degraded_dropped,
                self.repairs_completed,
                self.repairs_failed,
                self.repairs_verified,
            ],
            "verdicts": [(v.target.label, v.passed) for v in self.verdicts],
        }
        payload = json.dumps(blob, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def render(self) -> str:
        lines = [
            f"QoS scenario: weighting={self.config.weighting} "
            f"strategy={self.config.strategy} "
            f"storm={self.config.kill_count} servers "
            f"@t={self.config.kill_at:g}s",
            f"requests={self.requests_issued} "
            f"(foreground={self.foreground_issued}, "
            f"degraded={self.degraded_issued}, "
            f"dropped={self.degraded_dropped})  "
            f"repairs={self.repairs_completed} "
            f"(verified={self.repairs_verified}, "
            f"failed={self.repairs_failed})",
            "",
            self.harness.render_table(),
        ]
        if self.admission_stats:
            lines.append(
                "admission: "
                f"repair paced {self.admission_stats.get('flows_delayed', 0):g} "
                f"flows, total queue delay "
                f"{self.admission_stats.get('total_queue_delay', 0.0):.1f}s"
            )
        lines.append("")
        for verdict in self.verdicts:
            lines.append(verdict.render())
        return "\n".join(lines)


def _build_cluster(config: ScenarioConfig) -> "StorageCluster":
    from repro.fs.cluster import StorageCluster

    return StorageCluster.smallsite(
        num_servers=config.num_servers,
        num_clients=config.num_clients,
        heartbeat_interval=config.heartbeat_interval,
        seed=config.seed,
    )


def run_scenario(config: "Optional[ScenarioConfig]" = None) -> ScenarioResult:
    """Run one scenario to completion and collect every measurement."""
    from repro.codes import ReedSolomonCode
    from repro.core.mppr import MPPRConfig, RepairManager
    from repro.workloads.failures import crash_random_servers

    config = config or ScenarioConfig()
    cluster = _build_cluster(config)
    admission = config.admission_config()
    if admission is not None:
        cluster.enable_qos(admission)

    for _ in range(config.num_stripes):
        cluster.write_stripe(
            ReedSolomonCode(config.k, config.m), config.chunk_size
        )

    manager = RepairManager(
        cluster,
        MPPRConfig(
            strategy=config.strategy,
            weighting=config.weighting,
            repair_timeout=max(30.0, config.duration),
        ),
    )
    cluster.metaserver._repair_manager = manager
    cluster.metaserver.start_heartbeats()

    harness = SLOHarness(config.slo_targets())
    population = ClientPopulation(
        cluster,
        PopulationConfig(
            num_users=config.num_users,
            requests_per_second=config.requests_per_second,
            zipf_exponent=config.zipf_exponent,
            read_size=config.read_size,
            seed=config.seed,
        ),
        harness=harness,
    )
    population.start(config.duration)

    if config.kill_count > 0:
        cluster.sim.schedule(
            config.kill_at,
            crash_random_servers,
            cluster,
            config.kill_count,
            config.seed,
        )

    cluster.run(until=config.duration + config.drain_grace)
    population.stop()

    class_stats = {
        cls: harness.stats(cls)
        for cls in TRAFFIC_CLASSES
        if harness.count(cls) > 0
    }
    admission_stats: "Dict[str, float]" = {}
    controller = cluster.admission
    if controller is not None:
        admission_stats = {
            "flows_delayed": float(controller.flows_delayed),
            "total_queue_delay": float(controller.total_queue_delay),
            "mean_occupancy": float(controller.mean_occupancy()),
        }
        for cls, nbytes in sorted(controller.bytes_admitted.items()):
            admission_stats[f"bytes_admitted.{cls}"] = float(nbytes)

    return ScenarioResult(
        config=config,
        harness=harness,
        class_stats=class_stats,
        verdicts=harness.evaluate(),
        requests_issued=population.requests_issued,
        foreground_issued=population.foreground_issued,
        degraded_issued=population.degraded_issued,
        degraded_dropped=population.degraded_dropped,
        repairs_completed=len(manager.completed),
        repairs_failed=len(manager.failed_chunks),
        repairs_verified=sum(1 for r in manager.completed if r.verified),
        class_bytes={
            cls: cluster.network.class_bytes_moved.get(cls, 0.0)
            for cls in TRAFFIC_CLASSES
        },
        admission_stats=admission_stats,
    )


def compare_weighting(
    config: "Optional[ScenarioConfig]" = None,
) -> "Dict[str, ScenarioResult]":
    """The same storm under m-PPR weighting vs the load-blind baseline."""
    config = config or ScenarioConfig()
    out: "Dict[str, ScenarioResult]" = {}
    for weighting in ("mppr", "uniform"):
        out[weighting] = run_scenario(
            dataclasses.replace(config, weighting=weighting)
        )
    return out


def qos_contention_experiment(
    config: "Optional[ScenarioConfig]" = None,
):
    """Fig. 8/9 extension: does m-PPR weighting protect the user tail?

    Rows (one per weighting) carry the per-class p99/p99.9 a benchmark
    can gate on; the report is a printable side-by-side table.
    """
    from repro.analysis.experiments import ExperimentResult
    from repro.analysis.render import Table

    results = compare_weighting(config)
    table = Table(
        [
            "weighting",
            "fg p99",
            "deg p50",
            "deg p99",
            "deg p99.9",
            "repairs",
            "SLO",
        ],
        title="Fig 8/9 extension: user-read tail latency under a repair storm",
    )
    rows: "List[Dict[str, object]]" = []
    for weighting in ("mppr", "uniform"):
        result = results[weighting]

        def q(cls: str, quantile: float) -> float:
            value = result.quantile(cls, quantile)
            return float(value) if value is not None else 0.0

        row = {
            "weighting": weighting,
            "fg_p99_s": q(FOREGROUND, 0.99),
            "deg_p50_s": q(DEGRADED, 0.50),
            "deg_p99_s": q(DEGRADED, 0.99),
            "deg_p999_s": q(DEGRADED, 0.999),
            "repair_bytes": result.class_bytes.get(REPAIR, 0.0),
            "repairs_completed": result.repairs_completed,
            "degraded_issued": result.degraded_issued,
            "slo_pass": result.slo_pass,
        }
        rows.append(row)
        table.add_row(
            weighting,
            f"{row['fg_p99_s'] * 1e3:.0f}ms",
            f"{row['deg_p50_s'] * 1e3:.0f}ms",
            f"{row['deg_p99_s'] * 1e3:.0f}ms",
            f"{row['deg_p999_s'] * 1e3:.0f}ms",
            result.repairs_completed,
            "PASS" if result.slo_pass else "FAIL",
        )
    mppr_p99 = rows[0]["deg_p99_s"]
    uniform_p99 = rows[1]["deg_p99_s"]
    improvement = (
        (uniform_p99 - mppr_p99) / uniform_p99 if uniform_p99 else 0.0
    )
    report = (
        table.render()
        + "\n"
        + f"m-PPR weighting cuts degraded-read p99 by "
        f"{improvement * 100.0:.1f}% vs load-blind scheduling"
    )
    return ExperimentResult(
        experiment_id="ext_fig8_qos",
        title="QoS: m-PPR weighting vs uniform under a repair storm",
        rows=rows,
        report=report,
        notes=(
            "Open-loop Zipf population; repair traffic token-bucket "
            "paced; degraded reads share the max-min fabric."
        ),
    )


async def run_live_scenario(
    num_servers: int = 6,
    k: int = 3,
    m: int = 2,
    num_stripes: int = 3,
    num_reads: int = 24,
    repair_rate_limit: float = 0.0,
    seed: int = 7,
) -> "Tuple[SLOHarness, Dict[str, int]]":
    """QoS smoke over the live asyncio TCP stack.

    Foreground GET_CHUNK reads against live chunk servers, then a server
    kill followed by degraded repairs (paced when ``repair_rate_limit``
    is set); wall-clock latencies feed the same :class:`SLOHarness`.
    Returns the harness plus counters.
    """
    import time

    from repro.live.cluster import LiveCluster
    from repro.live.config import LiveConfig
    from repro.live.wire import MessageType

    config = LiveConfig(repair_rate_limit=repair_rate_limit)
    harness = SLOHarness(
        targets=[
            SLOTarget(FOREGROUND, 0.99, 5.0),
            SLOTarget(DEGRADED, 0.99, 30.0),
        ]
    )
    counters = {"foreground": 0, "degraded": 0, "repaired": 0}
    async with LiveCluster(
        num_servers=num_servers, config=config, seed=seed
    ) as live:
        stripes = [
            await live.write_stripe(f"rs({k},{m})")
            for _ in range(num_stripes)
        ]
        # Foreground phase: direct chunk reads round-robin over stripes.
        for i in range(num_reads):
            stripe = stripes[i % len(stripes)]
            index = i % k
            server = live.server(stripe.hosts[index])
            start = time.perf_counter()
            await live.pool.get(server.address).call(
                MessageType.GET_CHUNK,
                {"chunk_id": stripe.chunk_ids[index]},
            )
            harness.observe(FOREGROUND, time.perf_counter() - start)
            counters["foreground"] += 1
        # Storm phase: kill one host, degraded-read its chunks.
        lost = set(await live.kill_server(stripes[0].hosts[0]))
        for stripe in stripes:
            for index, chunk_id in enumerate(stripe.chunk_ids):
                if chunk_id not in lost:
                    continue
                start = time.perf_counter()
                report = await live.repair(stripe.stripe_id, index)
                harness.observe(DEGRADED, time.perf_counter() - start)
                counters["degraded"] += 1
                if report.result.verified:
                    counters["repaired"] += 1
    return harness, counters
