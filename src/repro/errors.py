"""Exception hierarchy for the PPR reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class GaloisError(ReproError):
    """Invalid Galois-field operation (e.g. division by zero)."""


class SingularMatrixError(ReproError):
    """A matrix that had to be inverted turned out to be singular."""


class CodingError(ReproError):
    """Erasure encode/decode failure."""


class UnrecoverableError(CodingError):
    """Too many erasures: the surviving chunks cannot recover the data."""


class PlanError(ReproError):
    """A repair plan is malformed or cannot be built."""


class SimulationError(ReproError):
    """Discrete-event simulation entered an invalid state."""


class StorageError(ReproError):
    """QFS-like storage layer failure (missing chunk, dead server, ...)."""


class ChunkNotFoundError(StorageError):
    """A requested chunk is not hosted (or no longer hosted) anywhere."""


class ServerUnavailableError(StorageError):
    """An operation was directed at a failed or unknown server."""


class SchedulingError(ReproError):
    """The m-PPR Repair-Manager could not schedule a reconstruction."""


class LiveError(ReproError):
    """Base class for the live (asyncio TCP) deployment mode."""


class RpcError(LiveError):
    """An RPC to a live peer failed."""


class RpcConnectionError(RpcError):
    """Could not connect to a peer, or the connection dropped mid-call."""


class RpcTimeoutError(RpcError):
    """A peer did not answer within the configured per-RPC timeout."""


class RpcRemoteError(RpcError):
    """The peer answered with an error frame.

    ``code`` carries the remote exception class name so callers can
    discriminate without parsing the message text.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.remote_message = message


class WireFormatError(RpcError):
    """A frame on the wire was malformed (bad magic, length, or body)."""


class LiveRepairError(LiveError):
    """A live repair failed after exhausting its retry/replan budget."""


class RepairAbortedError(LiveError):
    """A live repair task was cancelled by the coordinator."""


class StreamError(LiveError):
    """A wire stream (BEGIN/DATA/END sub-frame sequence) broke protocol:
    an unknown stream id, a sub-frame after END/ABORT, or a receiver that
    stopped consuming (bounded inbound queue stayed full)."""
