"""Per-repair shared state: the glue between coordinator, cluster and tasks.

A :class:`RepairContext` is created by the coordinator for every
reconstruction (regular repair or degraded read).  Tasks running on nodes
use it to start bulk transfers (recorded into the traffic matrix and the
network phase), forward plan commands to leaf peers, and report the
finished chunk; the context verifies the rebuilt bytes against ground
truth and produces the :class:`~repro.core.results.RepairResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.obs import causal
from repro.errors import StorageError
from repro.codes.recipe import RepairRecipe
from repro.core.results import RepairResult
from repro.fs.messages import RawReadRequest
from repro.sim.metrics import PHASES, PhaseBreakdown, TrafficMatrix

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.chunks import Stripe
    from repro.fs.cluster import StorageCluster
    from repro.fs.node import StorageNode


class RepairContext:
    """State shared by all participants of one reconstruction."""

    def __init__(
        self,
        cluster: "StorageCluster",
        repair_id: str,
        stripe: "Stripe",
        lost_index: int,
        strategy: str,
        kind: str,
        recipe: RepairRecipe,
        helper_servers: "Dict[int, str]",
        destination: str,
        expected_payload: "Optional[np.ndarray]",
        on_complete: "Optional[Callable[[RepairResult], None]]" = None,
        num_slices: int = 1,
    ):
        self.cluster = cluster
        self.repair_id = repair_id
        self.stripe = stripe
        self.lost_index = lost_index
        self.strategy = strategy
        self.kind = kind
        self.recipe = recipe
        self.helper_servers = dict(helper_servers)
        self._server_to_index = {s: i for i, s in helper_servers.items()}
        self.destination = destination
        self.expected_payload = expected_payload
        self.on_complete = on_complete
        self.num_slices = max(1, num_slices)

        #: Deterministic causal trace id; every span this repair produces
        #: (phases, disk ops, flows) is tagged with it so the stitcher can
        #: group cross-node work back into one repair DAG.
        self.trace_id = causal.trace_id_for(repair_id)
        self.compute = cluster.compute
        self.chunk_size = stripe.chunk_size
        self.breakdown = PhaseBreakdown()
        self.traffic = TrafficMatrix()
        self.cache_hits = 0
        self.start_time = cluster.sim.now
        self.breakdown.start_time = self.start_time
        self.finished = False
        self.result: "Optional[RepairResult]" = None
        #: aggregator server id -> [(leaf server id, plan command)] (§6.2).
        self.leaf_requests: "Dict[str, List[tuple]]" = {}
        self._tasks: "List[object]" = []
        #: §4.3 accounting: modeled bytes buffered for this repair, per node.
        self._buffer_now: "Dict[str, float]" = {}
        self._buffer_peak: "Dict[str, float]" = {}

    # ------------------------------------------------------------------
    # Lookups used by tasks
    # ------------------------------------------------------------------
    def stripe_index_of(self, server_id: str) -> int:
        """Which stripe chunk index a helper server holds for this repair."""
        try:
            return self._server_to_index[server_id]
        except KeyError:
            raise StorageError(
                f"server {server_id} is not a helper of repair {self.repair_id}"
            ) from None

    def register_task(self, task: object) -> None:
        self._tasks.append(task)

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    # ------------------------------------------------------------------
    # Observability bridge
    # ------------------------------------------------------------------
    def record_phase(
        self,
        phase: str,
        start: float,
        end: float,
        node_id: str = "",
        **attrs: object,
    ) -> None:
        """Record one phase interval (virtual time) for this repair.

        The single sim-side ingestion point: feeds the
        :class:`PhaseBreakdown` (the paper's Figure 1 view) and — when
        tracing is enabled — mirrors the interval as a
        ``sim.phase.<phase>`` obs span tagged with the node, repair id,
        stripe and strategy.  Tasks call this instead of touching
        ``breakdown`` directly so both views always agree.
        """
        self.breakdown.record(phase, start, end)
        tracer = obs.tracer()
        if tracer is not None:
            tracer.record_span(
                f"sim.phase.{phase}",
                start,
                end,
                node=node_id,
                category="sim.phase",
                repair_id=self.repair_id,
                trace_id=self.trace_id,
                stripe=self.stripe.stripe_id,
                strategy=self.strategy,
                **attrs,
            )

    # ------------------------------------------------------------------
    # §4.3 memory accounting
    # ------------------------------------------------------------------
    def note_buffer(self, node_id: str, delta_bytes: float) -> None:
        """Track reconstruction buffers held at a node (modeled bytes)."""
        now = self._buffer_now.get(node_id, 0.0) + delta_bytes
        self._buffer_now[node_id] = max(0.0, now)
        peak = self._buffer_peak.get(node_id, 0.0)
        if now > peak:
            self._buffer_peak[node_id] = now

    def peak_buffer_bytes(self) -> float:
        """Largest reconstruction memory footprint at any single node."""
        return max(self._buffer_peak.values(), default=0.0)

    # ------------------------------------------------------------------
    # Communication helpers
    # ------------------------------------------------------------------
    def start_transfer(
        self, src: str, dst: str, nbytes: float, payload: object
    ) -> None:
        """Bulk transfer recorded into the traffic matrix + network phase."""
        start = self.cluster.sim.now

        def on_done(_flow) -> None:
            self.record_phase(
                "network",
                start,
                self.cluster.sim.now,
                node_id=dst,
                nbytes=nbytes,
                src=src,
            )
            self.traffic.add(src, dst, nbytes)
            node = self.cluster.node(dst)
            node.deliver(payload)

        # Degraded reads are user-facing traffic; background repairs are
        # the paced class.  This tag is what the QoS admission controller
        # and per-class byte accounting key on.
        traffic_class = (
            "degraded" if self.kind == "degraded_read" else "repair"
        )
        self.cluster.start_flow(
            src, dst, nbytes, on_done, traffic_class=traffic_class
        )

    def send_leaf_requests(self, aggregator_id: str) -> None:
        """Forward plan commands from an aggregator to its leaf peers.

        Popped on first use so each leaf is asked exactly once.
        """
        for leaf_id, request in self.leaf_requests.pop(aggregator_id, []):
            node = self.cluster.node(leaf_id)
            self.cluster.send_control(
                leaf_id, node.handle_partial_request, request
            )

    def send_raw_read(self, helper_index: int, requester: str) -> None:
        """Ask the server hosting ``helper_index`` for its raw rows."""
        server_id = self.helper_servers[helper_index]
        chunk_id = self.stripe.chunk_ids[helper_index]
        request = RawReadRequest(
            repair_id=self.repair_id,
            stripe_id=self.stripe.stripe_id,
            chunk_id=chunk_id,
            rows_needed=self.recipe.term_for(helper_index).read_rows,
            rows=self.recipe.rows,
            chunk_size=self.chunk_size,
            requester=requester,
        )
        server = self.cluster.chunk_server(server_id)
        self.cluster.send_control(
            server_id, server.handle_raw_read, request
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish_at_destination(
        self, node: "StorageNode", chunk_payload: np.ndarray
    ) -> None:
        """Destination finished aggregation/decoding."""
        if self.finished:
            return
        if self.kind == "repair":
            disk = getattr(node, "disk", None)
            if disk is not None:
                start = self.cluster.sim.now

                def on_written() -> None:
                    self.record_phase(
                        "disk_write",
                        start,
                        self.cluster.sim.now,
                        node_id=node.node_id,
                        nbytes=self.chunk_size,
                    )
                    self._complete(node, chunk_payload)

                disk.write(self.chunk_size, on_written)
                return
        self._complete(node, chunk_payload)

    def _complete(self, node: "StorageNode", chunk_payload: np.ndarray) -> None:
        self.finished = True
        self.breakdown.end_time = self.cluster.sim.now
        verified = self.expected_payload is not None and bool(
            np.array_equal(chunk_payload, self.expected_payload)
        )
        self.result = RepairResult(
            repair_id=self.repair_id,
            kind=self.kind,
            strategy=self.strategy,
            code_name=self.stripe.code.name,
            stripe_id=self.stripe.stripe_id,
            lost_index=self.lost_index,
            chunk_size=self.chunk_size,
            destination=self.destination,
            start_time=self.start_time,
            end_time=self.cluster.sim.now,
            verified=verified,
            cache_hits=self.cache_hits,
            phase_busy={name: self.breakdown.busy(name) for name in PHASES},
            traffic=self.traffic,
            num_helpers=len(self.recipe.helpers),
            peak_buffer_bytes=self.peak_buffer_bytes(),
        )
        tracer = obs.tracer()
        if tracer is not None:
            tracer.record_span(
                "sim.repair",
                self.start_time,
                self.cluster.sim.now,
                node=self.destination,
                category="sim.repair",
                repair_id=self.repair_id,
                trace_id=self.trace_id,
                stripe=self.stripe.stripe_id,
                strategy=self.strategy,
                kind=self.kind,
                verified=verified,
                cache_hits=self.cache_hits,
                helpers=len(self.recipe.helpers),
            )
            obs.registry().counter(
                "sim.repairs.completed", strategy=self.strategy
            ).inc()
        self.cluster.repair_finished(self, chunk_payload)
        if self.on_complete is not None:
            self.on_complete(self.result)
