"""The paper's contribution, wired to the storage system and simulator.

* :mod:`repro.core.context` / :mod:`repro.core.results` — per-repair state
  and measurement records.
* :mod:`repro.core.coordinator` — plan construction and distribution (the
  Repair-Manager's execution side, §6.2).
* :mod:`repro.core.single_repair` — one-shot APIs used by experiments:
  run a regular repair or a degraded read with a chosen strategy.
* :mod:`repro.core.mppr` — the m-PPR scheduler: Algorithm 1 with the
  source/destination weights of Eqs. (2) and (3).
"""

from repro.core.results import RepairResult
from repro.core.context import RepairContext
from repro.core.coordinator import RepairCoordinator
from repro.core.single_repair import run_degraded_read, run_single_repair
from repro.core.mppr import MPPRConfig, RepairManager

__all__ = [
    "RepairResult",
    "RepairContext",
    "RepairCoordinator",
    "run_degraded_read",
    "run_single_repair",
    "MPPRConfig",
    "RepairManager",
]
