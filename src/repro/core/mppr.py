"""m-PPR: scheduling multiple concurrent reconstructions (§5, Algorithm 1).

The Repair-Manager keeps a queue of missing chunks and greedily schedules
each reconstruction, choosing:

* the best ``k`` *source* servers by Eq. (2)::

      w_src = a1*hasCache - a2*#reconstructions - a3*userLoad

* the best *destination* by Eq. (3) among reliability-eligible servers::

      w_dst = -(b1*#repairDsts + b2*userLoad)

Coefficient calibration follows §5: ``a2 = b1 = 1``;
``a1 = alpha * ceil(log2(k+1)) / beta`` where ``alpha`` is the fractional
time saved by a cache hit and ``beta`` the network share of a PPR repair;
``a2/a3 = b1/b2 = C_MB * ceil(log2 k)`` (user load measured in MB).  For
RS(6,3), 64 MB chunks and 1 Gbps links this yields a3 = 1/192 ≈ 0.005,
matching the paper's worked example.

Server state (cache contents, user load) comes from heartbeats and is
therefore *stale* by up to one heartbeat interval, exactly as §5 accepts;
in-flight repair counts are the RM's own bookkeeping and are fresh.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro import obs
from repro.errors import (
    ConfigurationError,
    SchedulingError,
    UnrecoverableError,
)
from repro.core.coordinator import RepairCoordinator
from repro.core.results import BatchRepairResult, RepairResult
from repro.fs.chunks import Stripe
from repro.util.units import MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.context import RepairContext
    from repro.fs.cluster import StorageCluster


@dataclass(frozen=True)
class MPPRConfig:
    """Tunables of the m-PPR scheduler."""

    strategy: str = "ppr"
    #: Reconstructions a repair is allowed to run before being rescheduled
    #: with fresh servers (§5 "Staleness": the RM monitors scheduled
    #: reconstructions and reschedules stragglers).
    repair_timeout: float = 60.0
    #: Maximum reschedule attempts per chunk before giving up.
    max_retries: int = 5
    #: Delay before retrying chunks that could not be scheduled.
    retry_delay: float = 5.0
    #: alpha of §5: fractional total-time saving from a source cache hit.
    alpha: float = 0.12
    #: beta of §5: network share of a PPR reconstruction.
    beta: float = 0.7
    a2: float = 1.0
    b1: float = 1.0
    #: Pipelining factor applied to every scheduled reconstruction.
    num_slices: int = 1
    #: §4.2 extension: put fast servers at busy PPR tree positions.
    capacity_aware: bool = False
    #: "mppr" applies Eqs. (2)/(3); "uniform" zeroes every weight so
    #: server choice degrades to the deterministic tie-break order —
    #: the load-blind baseline of the Fig. 8/9 QoS comparison.
    weighting: str = "mppr"

    def __post_init__(self) -> None:
        if self.weighting not in ("mppr", "uniform"):
            raise ConfigurationError(
                f"weighting must be 'mppr' or 'uniform', got "
                f"{self.weighting!r}"
            )


class RepairManager:
    """The centralized Repair-Manager (lives in the Meta-Server)."""

    def __init__(
        self, cluster: "StorageCluster", config: "Optional[MPPRConfig]" = None
    ):
        self.cluster = cluster
        self.config = config or MPPRConfig()
        self.coordinator = RepairCoordinator(cluster)
        self.queue: "Deque[tuple[str, int]]" = deque()  # (chunk_id, retries)
        self.inflight: "Dict[str, RepairContext]" = {}  # chunk_id -> context
        self.completed: "List[RepairResult]" = []
        self.failed_chunks: "List[str]" = []
        #: RM-fresh counters layered over stale heartbeat data.
        self._src_load: "Dict[str, int]" = {}
        self._dst_load: "Dict[str, int]" = {}
        self._retry_armed = False
        self._schedule_armed = False

    # ------------------------------------------------------------------
    # Coefficients (§5 "Choosing the coefficients")
    # ------------------------------------------------------------------
    def coefficients(self, k: int, chunk_size: float) -> "Dict[str, float]":
        """Eq. (2)/(3) coefficients for a (k, m) stripe of ``chunk_size``."""
        cfg = self.config
        steps = math.ceil(math.log2(k + 1))
        a1 = cfg.alpha * steps / cfg.beta * cfg.a2
        chunk_mb = max(chunk_size / MB, 1e-9)
        denom = chunk_mb * max(1.0, math.ceil(math.log2(max(k, 2))))
        a3 = cfg.a2 / denom
        b2 = cfg.b1 / denom
        return {"a1": a1, "a2": cfg.a2, "a3": a3, "b1": cfg.b1, "b2": b2}

    # ------------------------------------------------------------------
    # Weights (Eqs. 2 and 3)
    # ------------------------------------------------------------------
    def source_weight(
        self, server_id: str, chunk_id: str, coeff: "Dict[str, float]"
    ) -> float:
        if self.config.weighting == "uniform":
            return 0.0
        beat = self.cluster.metaserver.heartbeat_view(server_id)
        has_cache = 1.0 if beat and chunk_id in beat.cached_chunk_ids else 0.0
        user_load_mb = (beat.user_load_bytes / MB) if beat else 0.0
        reconstructions = self._src_load.get(server_id, 0)
        if beat:
            reconstructions = max(reconstructions, beat.active_reconstructions)
        return (
            coeff["a1"] * has_cache
            - coeff["a2"] * reconstructions
            - coeff["a3"] * user_load_mb
        )

    def destination_weight(
        self, server_id: str, coeff: "Dict[str, float]"
    ) -> float:
        if self.config.weighting == "uniform":
            return 0.0
        beat = self.cluster.metaserver.heartbeat_view(server_id)
        user_load_mb = (beat.user_load_bytes / MB) if beat else 0.0
        repair_dsts = self._dst_load.get(server_id, 0)
        if beat:
            repair_dsts = max(repair_dsts, beat.active_repair_destinations)
        return -(coeff["b1"] * repair_dsts + coeff["b2"] * user_load_mb)

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def enqueue_missing(self, chunk_ids: "List[str]") -> None:
        """Add missing chunks and schedule the batch.

        Scheduling is deferred by one (zero-delay) event so that multiple
        failures detected at the same instant — e.g. several servers of a
        rack dying together — are planned as one batch against the final
        liveness picture, instead of the first repair picking helpers on a
        server that is about to be declared dead.
        """
        for chunk_id in chunk_ids:
            if chunk_id in self.inflight:
                continue
            if any(cid == chunk_id for cid, _ in self.queue):
                continue
            self.queue.append((chunk_id, 0))
        if self.queue and not self._schedule_armed:
            self._schedule_armed = True

            def run() -> None:
                self._schedule_armed = False
                self.schedule_pending()

            self.cluster.sim.schedule(0.0, run)

    def schedule_pending(self) -> None:
        """Algorithm 1: pop chunks and greedily schedule reconstructions."""
        requeue: "List[tuple[str, int]]" = []
        while self.queue:
            chunk_id, retries = self.queue.popleft()
            try:
                self._schedule_one(chunk_id, retries)
            except (SchedulingError, UnrecoverableError):
                if retries + 1 >= self.config.max_retries:
                    self.failed_chunks.append(chunk_id)
                    if obs.tracer() is not None:
                        obs.registry().counter("mppr.chunks.failed").inc()
                else:
                    requeue.append((chunk_id, retries + 1))
        self.queue.extend(requeue)
        if self.queue and not self._retry_armed:
            # Re-attempt unschedulable chunks after a back-off; servers may
            # have recovered or load may have drained by then.
            self._retry_armed = True

            def retry() -> None:
                self._retry_armed = False
                self.schedule_pending()

            self.cluster.sim.schedule(self.config.retry_delay, retry)

    # ------------------------------------------------------------------
    # Selection (SELECTSOURCES / SELECTDESTINATION of Algorithm 1)
    # ------------------------------------------------------------------
    def select_sources(
        self, stripe: Stripe, lost_index: int, chunk_size: float
    ) -> "List[int]":
        """Pick helper chunk indices, best source weights first.

        Grows the weight-ordered candidate set until the code can build a
        repair equation from it (k servers for MDS codes; fewer for codes
        with locality).
        """
        meta = self.cluster.metaserver
        available = meta.alive_host_indices(stripe)
        available.pop(lost_index, None)
        if not available:
            raise SchedulingError(
                f"no sources for {stripe.stripe_id}#{lost_index}"
            )
        coeff = self.coefficients(stripe.code.k, chunk_size)
        ordered = sorted(
            available.items(),
            key=lambda item: self.source_weight(
                item[1], stripe.chunk_ids[item[0]], coeff
            ),
            reverse=True,
        )
        chosen: "List[int]" = []
        for index, _server in ordered:
            chosen.append(index)
            try:
                stripe.code.repair_recipe(lost_index, chosen)
                return chosen
            except UnrecoverableError:
                continue
        raise SchedulingError(
            f"survivors cannot rebuild {stripe.stripe_id}#{lost_index}"
        )

    def select_destination(
        self,
        stripe: Stripe,
        chunk_size: float,
        source_indices: "Optional[List[int]]" = None,
    ) -> str:
        """Pick the repair site among reliability-eligible servers."""
        meta = self.cluster.metaserver
        hosts = [
            host
            for host in (
                meta.locate_chunk(cid) for cid in stripe.chunk_ids
            )
            if host is not None
        ]
        alive = self.cluster.alive_servers()
        eligible = self.cluster.placement.eligible_destinations(alive, hosts)
        if not eligible:
            # Small clusters: relax the domain constraints but never pick a
            # server already holding a chunk of this stripe.
            eligible = [s for s in alive if s not in hosts]
        if not eligible and source_indices is not None:
            # Wide stripes on small clusters: only exclude the servers
            # actually serving as repair sources.
            source_hosts = {
                self._host_of(stripe, i) for i in source_indices
            }
            eligible = [s for s in alive if s not in source_hosts]
        if not eligible:
            raise SchedulingError(
                f"no eligible destination for {stripe.stripe_id}"
            )
        coeff = self.coefficients(stripe.code.k, chunk_size)
        return max(
            eligible, key=lambda s: self.destination_weight(s, coeff)
        )

    # ------------------------------------------------------------------
    # Scheduling one reconstruction
    # ------------------------------------------------------------------
    def _schedule_one(self, chunk_id: str, retries: int) -> None:
        meta = self.cluster.metaserver
        stripe = meta.stripe_for_chunk(chunk_id)
        lost_index = stripe.chunk_index(chunk_id)
        if meta.locate_chunk(chunk_id) is not None:
            return  # already repaired (e.g. transient failure resolved)
        sources = self.select_sources(stripe, lost_index, stripe.chunk_size)
        destination = self.select_destination(
            stripe, stripe.chunk_size, sources
        )

        schedule_time = self.cluster.sim.now

        def on_complete(result: RepairResult) -> None:
            self.inflight.pop(chunk_id, None)
            self.completed.append(result)
            tracer = obs.tracer()
            if tracer is not None:
                # Per-stripe scheduling span: from the RM's decision to
                # completion, so queueing ahead of the repair is visible.
                tracer.record_span(
                    "mppr.stripe_repair",
                    schedule_time,
                    self.cluster.sim.now,
                    node=destination,
                    category="mppr",
                    stripe=stripe.stripe_id,
                    chunk_id=chunk_id,
                    repair_id=result.repair_id,
                    strategy=self.config.strategy,
                    retries=retries,
                )
            for index in sources:
                server = self._host_of(stripe, index)
                if server is not None:
                    self._src_load[server] = max(
                        0, self._src_load.get(server, 0) - 1
                    )
            self._dst_load[destination] = max(
                0, self._dst_load.get(destination, 0) - 1
            )
            self.schedule_pending()

        context = self.coordinator.start_repair(
            stripe=stripe,
            lost_index=lost_index,
            strategy=self.config.strategy,
            destination=destination,
            kind="repair",
            helper_indices=sources,
            on_complete=on_complete,
            num_slices=self.config.num_slices,
            capacity_aware=self.config.capacity_aware,
        )
        self.inflight[chunk_id] = context
        # UPDATESERVERWEIGHTS: account for the load this repair adds.
        for index in context.recipe.helpers:
            server = context.helper_servers[index]
            self._src_load[server] = self._src_load.get(server, 0) + 1
        self._dst_load[destination] = self._dst_load.get(destination, 0) + 1
        self._arm_timeout(chunk_id, context, retries)

    def _host_of(self, stripe: Stripe, index: int) -> "Optional[str]":
        return self.cluster.metaserver.chunk_locations.get(
            stripe.chunk_ids[index]
        )

    def _arm_timeout(
        self, chunk_id: str, context: "RepairContext", retries: int
    ) -> None:
        def check() -> None:
            if context.finished:
                return
            if obs.tracer() is not None:
                obs.registry().counter(
                    "mppr.repairs.rescheduled", stripe=context.stripe.stripe_id
                ).inc()
            # Abandon the stuck plan (late messages drop harmlessly) and
            # reschedule with a fresh server choice (§5 "Staleness").
            self.cluster._repairs.pop(context.repair_id, None)
            self.inflight.pop(chunk_id, None)
            self.queue.append((chunk_id, retries + 1))
            self.schedule_pending()

        self.cluster.sim.schedule(self.config.repair_timeout, check)

    # ------------------------------------------------------------------
    # Degraded reads (highest priority: scheduled immediately)
    # ------------------------------------------------------------------
    def start_degraded_read(
        self,
        stripe: Stripe,
        lost_index: int,
        client_id: str,
        strategy: "Optional[str]" = None,
        on_complete: "Optional[Callable[[RepairResult], None]]" = None,
        num_slices: int = 1,
    ) -> "RepairContext":
        sources = self.select_sources(stripe, lost_index, stripe.chunk_size)
        return self.coordinator.start_repair(
            stripe=stripe,
            lost_index=lost_index,
            strategy=strategy or self.config.strategy,
            destination=client_id,
            kind="degraded_read",
            helper_indices=sources,
            on_complete=on_complete,
            num_slices=num_slices,
        )

    # ------------------------------------------------------------------
    # Batch helpers for experiments
    # ------------------------------------------------------------------
    def drain(self, max_time: float = 1e9) -> BatchRepairResult:
        """Run the simulation until all queued/in-flight repairs finish.

        Stops at ``max_time`` (virtual) even if repairs are stuck, so a bug
        surfaces as unfinished repairs rather than a hang.
        """
        sim = self.cluster.sim
        steps = 0
        while self.queue or self.inflight:
            next_time = sim.peek_time()
            if next_time is None or next_time > max_time:
                break
            sim.step()
            steps += 1
            if steps > 5_000_000:
                raise SchedulingError("m-PPR drain exceeded 5M events")
        return BatchRepairResult(results=list(self.completed))
