"""One-shot experiment APIs: run a single repair or degraded read.

These wrap the coordinator so experiments and examples can measure one
reconstruction end to end without driving the m-PPR scheduler:

    cluster = StorageCluster.smallsite()
    stripe = cluster.write_stripe(ReedSolomonCode(6, 3), "64MiB")
    result = run_single_repair(cluster, stripe, lost_index=0, strategy="ppr")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import SimulationError
from repro.core.coordinator import RepairCoordinator
from repro.core.results import RepairResult
from repro.fs.chunks import Stripe

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


def _drain_until(cluster: "StorageCluster", done: "List[RepairResult]") -> None:
    steps = 0
    while not done:
        if not cluster.sim.step():
            raise SimulationError("simulation idle before repair finished")
        steps += 1
        if steps > 5_000_000:
            raise SimulationError("repair did not finish within 5M events")


def run_single_repair(
    cluster: "StorageCluster",
    stripe: Stripe,
    lost_index: int,
    strategy: str = "ppr",
    destination: "Optional[str]" = None,
    kill_host: bool = True,
    num_slices: int = 1,
    capacity_aware: bool = False,
) -> RepairResult:
    """Fail one chunk and measure its regular (proactive) repair.

    ``kill_host`` crashes the hosting server (the paper's methodology);
    pass False if the caller already induced the failure.
    """
    chunk_id = stripe.chunk_ids[lost_index]
    if kill_host:
        host = cluster.metaserver.locate_chunk(chunk_id)
        if host is not None:
            cluster.kill_server(host)

    done: "List[RepairResult]" = []
    coordinator = RepairCoordinator(cluster)
    coordinator.start_repair(
        stripe=stripe,
        lost_index=lost_index,
        strategy=strategy,
        destination=destination,
        kind="repair",
        on_complete=done.append,
        num_slices=num_slices,
        capacity_aware=capacity_aware,
    )
    _drain_until(cluster, done)
    return done[0]


def run_degraded_read(
    cluster: "StorageCluster",
    stripe: Stripe,
    lost_index: int,
    strategy: str = "ppr",
    client_id: "Optional[str]" = None,
    kill_host: bool = True,
    num_slices: int = 1,
) -> RepairResult:
    """Fail one chunk and measure a degraded read from a client."""
    chunk_id = stripe.chunk_ids[lost_index]
    if kill_host:
        host = cluster.metaserver.locate_chunk(chunk_id)
        if host is not None:
            cluster.kill_server(host)
    client = cluster.client(client_id)

    done: "List[RepairResult]" = []
    client.degraded_read(
        chunk_id, on_done=done.append, strategy=strategy,
        num_slices=num_slices,
    )
    _drain_until(cluster, done)
    return done[0]
