"""Repair coordination: turn a lost chunk into a running reconstruction.

This is the execution half of the Repair-Manager (§6.2): compute the
decoding coefficients, build the communication plan for the requested
strategy, and distribute plan commands — to the destination only (star /
staggered, which then pulls raw chunks), or to the aggregators and the
repair site (PPR), which forward leaf commands to their downstream peers.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from repro import obs
from repro.obs import causal
from repro.errors import PlanError, StorageError, UnrecoverableError
from repro.core.context import RepairContext
from repro.core.results import RepairResult
from repro.fs.chunks import Stripe
from repro.fs.messages import PartialOpRequest
from repro.fs.node import RawCollectionTask
from repro.repair.plan import (
    DESTINATION,
    RepairPlan,
    build_plan,
    build_ppr_plan,
    ppr_position_loads,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cluster import StorageCluster


def build_partial_requests(
    plan: RepairPlan,
    *,
    repair_id: str,
    stripe_id: str,
    chunk_ids: "List[str]",
    chunk_size: float,
    node_id_for: "Callable[[int], str]",
    num_slices: int = 1,
) -> "Dict[int, PartialOpRequest]":
    """Turn a partial-result plan into per-node plan commands (§6.2).

    ``node_id_for`` maps a plan node (helper chunk index or
    :data:`DESTINATION`) to the server that plays it.  Shared between the
    simulator's coordinator and the live TCP coordinator, so both
    deployments distribute byte-for-byte the same ``PartialOpRequest``s.
    """
    recipe = plan.recipe
    requests: "Dict[int, PartialOpRequest]" = {}
    for plan_node in plan.participants:
        children = tuple(
            node_id_for(c) for c in plan.children_of(plan_node)
        )
        outgoing = plan.outgoing(plan_node)
        if plan_node == DESTINATION:
            parent: "Optional[str]" = None
            send_rows: "frozenset[int]" = frozenset()
            send_fraction = 0.0
        else:
            if len(outgoing) != 1:
                raise PlanError(
                    f"PPR node {plan_node} must send exactly once"
                )
            transfer = outgoing[0]
            parent = node_id_for(transfer.dst)
            send_rows = transfer.rows
            send_fraction = transfer.fraction
        if plan_node == DESTINATION:
            chunk_id, entries, read_fraction = None, (), 0.0
        else:
            chunk_id = chunk_ids[plan_node]
            entries = recipe.term_for(plan_node).entries
            read_fraction = recipe.read_fraction(plan_node)
        requests[plan_node] = PartialOpRequest(
            repair_id=repair_id,
            stripe_id=stripe_id,
            chunk_id=chunk_id,
            entries=entries,
            rows=recipe.rows,
            chunk_size=chunk_size,
            children=children,
            parent=parent,
            send_rows=send_rows,
            send_fraction=send_fraction,
            read_fraction=read_fraction,
            num_slices=num_slices,
        )
    return requests


class RepairCoordinator:
    """Builds and launches reconstruction plans on a cluster."""

    def __init__(self, cluster: "StorageCluster"):
        self.cluster = cluster
        #: Real wall-clock seconds spent building plans (for §7.6).
        self.plan_wall_seconds: "List[float]" = []
        #: Control messages sent per repair (the paper's 1 + k/2 figure).
        self.plan_messages: "List[int]" = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def start_repair(
        self,
        stripe: Stripe,
        lost_index: int,
        strategy: str,
        destination: "Optional[str]" = None,
        kind: str = "repair",
        helper_indices: "Optional[Iterable[int]]" = None,
        on_complete: "Optional[Callable[[RepairResult], None]]" = None,
        num_slices: int = 1,
        capacity_aware: bool = False,
    ) -> RepairContext:
        """Schedule one reconstruction; returns its context immediately.

        ``destination`` is a chunk-server id (regular repair) or a client
        id (degraded read); ``None`` picks a reliability-eligible server
        automatically.  ``helper_indices`` optionally restricts which
        surviving chunks may participate (m-PPR's source selection).
        ``capacity_aware`` enables §4.2's heterogeneous extension: PPR
        aggregator positions go to the servers with the fastest links.
        """
        meta = self.cluster.metaserver
        available = meta.alive_host_indices(stripe)
        available.pop(lost_index, None)
        if helper_indices is not None:
            wanted = set(helper_indices)
            available = {
                i: host for i, host in available.items() if i in wanted
            }
        if not available:
            raise UnrecoverableError(
                f"no surviving chunks for {stripe.stripe_id}#{lost_index}"
            )

        wall_start = _time.perf_counter()
        recipe = stripe.code.repair_recipe(lost_index, available.keys())
        if capacity_aware and strategy == "ppr":
            order = self._capacity_order(recipe, available)
            plan = build_ppr_plan(recipe, helper_order=order)
        else:
            plan = build_plan(strategy, recipe)
        self.plan_wall_seconds.append(_time.perf_counter() - wall_start)

        helper_servers = {i: available[i] for i in recipe.helpers}
        if destination is None:
            destination = self._choose_destination(stripe, helper_servers)
        if destination in helper_servers.values():
            raise PlanError(
                f"destination {destination} already hosts a helper chunk"
            )
        lost_chunk_id = stripe.chunk_ids[lost_index]
        context = RepairContext(
            cluster=self.cluster,
            repair_id=self.cluster.new_repair_id(),
            stripe=stripe,
            lost_index=lost_index,
            strategy=strategy,
            kind=kind,
            recipe=recipe,
            helper_servers=helper_servers,
            destination=destination,
            expected_payload=self.cluster.truth_payload(lost_chunk_id),
            on_complete=on_complete,
            num_slices=num_slices,
        )
        self.cluster.register_repair(context)

        if kind == "repair":
            dest_server = self.cluster.servers.get(destination)
            if dest_server is not None:
                dest_server.active_repair_destinations += 1

        # RM-side computation before any message goes out: decoding-matrix
        # inversion + plan construction (measured at 5.3–8.7 ms in §7.6).
        k = len(recipe.helpers)
        rm_delay = self.cluster.compute.inversion_time(max(k, 2))
        plan_start = self.cluster.sim.now

        def distribute() -> None:
            context.record_phase(
                "plan", plan_start, self.cluster.sim.now, node_id="rm"
            )
            if strategy in ("ppr", "chain"):
                self._distribute_partial(context, plan)
            else:
                self._start_raw(context, staggered=(strategy == "staggered"))

        if obs.tracer() is not None:
            # Bind this repair's causal context so every event transitively
            # scheduled by the plan distribution — control messages, disk
            # ops, flows — carries (trace_id, spawning span) with it; the
            # sim event loop rebinds it around each callback.
            ctx = causal.SpanContext(
                trace_id=context.trace_id,
                span_id=f"rm:{context.repair_id}",
            )
            with causal.bound(ctx):
                self.cluster.sim.schedule(rm_delay, distribute)
        else:
            self.cluster.sim.schedule(rm_delay, distribute)
        return context

    def _capacity_order(
        self, recipe, available: "Dict[int, str]"
    ) -> "List[int]":
        """Assign high-capacity helper servers to busy tree positions.

        §4.2: "If servers have non-homogeneous network capacity, PPR can
        be extended to use servers with higher network capacity as
        aggregators, since these servers often handle multiple flows."
        """
        helpers = list(recipe.helpers)
        loads = ppr_position_loads(len(helpers))

        def capacity(chunk_index: int) -> float:
            server = available[chunk_index]
            link = self.cluster.topology.egress.get(server)
            return link.capacity if link is not None else 0.0

        by_capacity = sorted(helpers, key=capacity, reverse=True)
        positions_by_load = sorted(
            range(len(helpers)), key=lambda p: loads[p], reverse=True
        )
        order: "List[Optional[int]]" = [None] * len(helpers)
        for position, helper in zip(positions_by_load, by_capacity):
            order[position] = helper
        return [h for h in order if h is not None]

    def _choose_destination(
        self, stripe: Stripe, helper_servers: "Dict[int, str]"
    ) -> str:
        """Pick a repair site with progressively relaxed constraints.

        Tier 1: placement-eligible (no stripe host, no shared failure /
        upgrade domain — §5's reliability rule).  Tier 2: any alive server
        not hosting a chunk of this stripe.  Tier 3 (wide stripes on small
        clusters): any alive server not hosting a *helper* chunk.
        """
        meta = self.cluster.metaserver
        hosts = [
            host
            for host in (meta.locate_chunk(cid) for cid in stripe.chunk_ids)
            if host is not None
        ]
        alive = self.cluster.alive_servers()
        eligible = self.cluster.placement.eligible_destinations(alive, hosts)
        if not eligible:
            eligible = [s for s in alive if s not in hosts]
        if not eligible:
            used = set(helper_servers.values())
            eligible = [s for s in alive if s not in used]
        if not eligible:
            raise StorageError(
                f"no server can host the repair of {stripe.stripe_id}"
            )
        return eligible[0]

    # ------------------------------------------------------------------
    # Partial-plan distribution (§6.2; covers PPR trees and chains)
    # ------------------------------------------------------------------
    def _node_id_for(self, context: RepairContext, plan_node: int) -> str:
        if plan_node == DESTINATION:
            return context.destination
        return context.helper_servers[plan_node]

    def _distribute_partial(self, context: RepairContext, plan: RepairPlan) -> None:
        requests = build_partial_requests(
            plan,
            repair_id=context.repair_id,
            stripe_id=context.stripe.stripe_id,
            chunk_ids=context.stripe.chunk_ids,
            chunk_size=context.chunk_size,
            node_id_for=lambda n: self._node_id_for(context, n),
            num_slices=context.num_slices,
        )

        aggregators = [
            node
            for node in plan.participants
            if plan.children_of(node) or node == DESTINATION
        ]
        agg_ids = {self._node_id_for(context, n) for n in aggregators}
        # Leaves receive their command from their parent aggregator.
        leaf_count = 0
        for plan_node in plan.participants:
            if plan_node == DESTINATION or plan.children_of(plan_node):
                continue
            outgoing = plan.outgoing(plan_node)
            parent_id = self._node_id_for(context, outgoing[0].dst)
            leaf_id = self._node_id_for(context, plan_node)
            context.leaf_requests.setdefault(parent_id, []).append(
                (leaf_id, requests[plan_node])
            )
            leaf_count += 1

        # The RM's plan messages go to aggregators + the repair site.
        self.plan_messages.append(len(aggregators))
        for plan_node in aggregators:
            node_id = self._node_id_for(context, plan_node)
            node = self.cluster.node(node_id)
            self.cluster.send_control(
                node_id, node.handle_partial_request, requests[plan_node]
            )

    # ------------------------------------------------------------------
    # Traditional / staggered
    # ------------------------------------------------------------------
    def _start_raw(self, context: RepairContext, staggered: bool) -> None:
        self.plan_messages.append(1)
        node = self.cluster.node(context.destination)

        def begin() -> None:
            RawCollectionTask(node, context, staggered=staggered)

        self.cluster.send_control(context.destination, begin)
