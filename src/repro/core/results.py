"""Measurement records produced by reconstructions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.metrics import PHASES, TrafficMatrix


@dataclass
class RepairResult:
    """Everything measured about one reconstruction.

    ``verified`` is True when the rebuilt bytes matched the ground-truth
    payload — every simulated repair is also a correctness check.
    """

    repair_id: str
    kind: str  # "repair" or "degraded_read"
    strategy: str  # "star" | "staggered" | "ppr"
    code_name: str
    stripe_id: str
    lost_index: int
    chunk_size: float
    destination: str
    start_time: float
    end_time: float
    verified: bool
    cache_hits: int
    phase_busy: "Dict[str, float]"
    traffic: TrafficMatrix
    num_helpers: int
    #: §4.3: largest reconstruction buffer held at any single node.
    peak_buffer_bytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def phase_share(self, phase: str) -> float:
        """Busy time of a phase as a fraction of the end-to-end duration."""
        if self.duration <= 0:
            return 0.0
        return self.phase_busy.get(phase, 0.0) / self.duration

    def summary(self) -> str:
        phases = ", ".join(
            f"{name}={self.phase_busy.get(name, 0.0) * 1e3:.1f}ms"
            for name in PHASES
            if self.phase_busy.get(name, 0.0) > 0
        )
        return (
            f"[{self.strategy}] {self.code_name} {self.kind} of "
            f"{self.stripe_id}#{self.lost_index}: "
            f"{self.duration * 1e3:.1f}ms ({phases}) "
            f"verified={self.verified}"
        )


@dataclass
class BatchRepairResult:
    """m-PPR outcome for a batch of simultaneous reconstructions."""

    results: "List[RepairResult]" = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Wall time from first start to last completion."""
        if not self.results:
            return 0.0
        return max(r.end_time for r in self.results) - min(
            r.start_time for r in self.results
        )

    @property
    def mean_duration(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.duration for r in self.results) / len(self.results)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.results)
