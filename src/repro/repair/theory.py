"""Closed-form predictions from the paper: Theorem 1, Table 1, Table 2, Eq. 1.

These are the analytic targets the simulator's measured numbers are checked
against in the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


def ppr_timesteps(k: int) -> int:
    """Theorem 1: PPR finishes network transfer in ``ceil(log2(k+1))`` steps."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return math.ceil(math.log2(k + 1))


def expected_transfer_depth(strategy: str, k: int) -> int:
    """Predicted serialized-transfer count on a repair's critical path.

    This is the structural form of Theorem 1, used by the causal-trace
    conformance checker (:mod:`repro.obs.conformance`).  A transfer is
    *serialized* behind another when it either consumed the other's output
    (data dependency) or had to share the same ingress link (resource
    dependency) — which is exactly the accounting behind the paper's
    "time steps":

    * ``ppr`` — the binomial tree spreads transfers across many links; the
      longest serialization is the destination's ``ceil(log2(k+1))``
      arrivals.
    * ``star`` — all ``k`` helper chunks funnel into the repair site's one
      ingress link (the paper's incast argument), so all ``k`` transfers
      serialize there.
    * ``staggered`` — the same ``k``-deep funnel, made explicit in time.
    * ``chain`` — ``k`` transfers serialized by data dependency along the
      pipeline (each link carries one transfer).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if strategy == "ppr":
        return ppr_timesteps(k)
    if strategy in ("star", "staggered", "chain"):
        return k
    raise ValueError(f"unknown repair strategy: {strategy!r}")


def traditional_transfer_time(k: int, chunk_size: float, bandwidth: float) -> float:
    """Theorem 1 baseline: ``k * C / B_N`` (k chunks funnel into one link)."""
    return k * chunk_size / bandwidth


def ppr_transfer_time(k: int, chunk_size: float, bandwidth: float) -> float:
    """Theorem 1: ``ceil(log2(k+1)) * C / B_N``."""
    return ppr_timesteps(k) * chunk_size / bandwidth


def pipelined_transfer_time(
    depth: int, chunk_size: float, bandwidth: float, num_slices: int
) -> float:
    """Sliced pipelining over a depth-``depth`` partial plan.

    ``(depth + S - 1) * C / (S * B)`` — the repair-pipelining extension
    (Li et al., ATC'17, seeded by this paper): the pipeline fills in
    ``depth`` slice-times and drains ``S-1`` more.  As S grows, a chain of
    any length approaches one ``C/B``.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if num_slices < 1:
        raise ValueError(f"num_slices must be >= 1, got {num_slices}")
    return (depth + num_slices - 1) * chunk_size / (num_slices * bandwidth)


def transfer_time_reduction(k: int) -> float:
    """Fractional network-transfer-time reduction: ``1 - ceil(log2(k+1))/k``."""
    return 1.0 - ppr_timesteps(k) / k


def per_server_bandwidth_reduction(k: int) -> float:
    """Table 1's "maximum BW usage/server" reduction: ``1 - ceil(log2 k)/k``.

    The busiest PPR aggregator moves about ``ceil(log2 k)`` chunks over its
    links versus ``k`` into the traditional repair site.  (Reproduces the
    exact Table 1 column, including the (8,3) row where this differs from
    the transfer-time reduction.)
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    return 1.0 - math.ceil(math.log2(k)) / k


def memory_footprint_traditional(k: int, chunk_size: float) -> float:
    """§4.3: traditional repair holds about ``k`` chunks in memory."""
    return k * chunk_size


def memory_footprint_ppr(k: int, chunk_size: float) -> float:
    """§4.3: PPR nodes hold at most ``ceil(log2(k+1))`` chunks."""
    return ppr_timesteps(k) * chunk_size


def reconstruction_time_estimate(
    k: int,
    chunk_size: float,
    io_bandwidth: float,
    net_bandwidth: float,
    compute_seconds_per_byte: float,
) -> float:
    """Eq. (1): ``T = C/B_I + k*C/B_N + T_comp(k*C)`` (traditional repair)."""
    return (
        chunk_size / io_bandwidth
        + k * chunk_size / net_bandwidth
        + compute_seconds_per_byte * k * chunk_size
    )


def ppr_reconstruction_time_estimate(
    k: int,
    chunk_size: float,
    io_bandwidth: float,
    net_bandwidth: float,
    compute_seconds_per_byte: float,
) -> float:
    """Eq. (1) rewritten for PPR's critical path.

    The disk read is unchanged, the network term shrinks from ``k`` to
    ``ceil(log2(k+1))`` chunk-times (Theorem 1), and the compute term
    follows Table 2: the critical path carries one multiply plus
    ``ceil(log2(k+1))`` XOR/aggregation stages instead of ``k`` serial
    multiply-XORs, so it scales with the tree depth, not the stripe width.
    """
    steps = ppr_timesteps(k)
    return (
        chunk_size / io_bandwidth
        + steps * chunk_size / net_bandwidth
        + compute_seconds_per_byte * steps * chunk_size
    )


# ----------------------------------------------------------------------
# Regenerating-code repair bandwidth γ(d) and the generalized Eq. (1)
# ----------------------------------------------------------------------
def msr_repair_traffic(k: int, d: int) -> float:
    """MSR repair bandwidth γ(d) in *chunk units*: ``d / (d - k + 1)``.

    The cut-set bound of Dimakis et al. at the minimum-storage point: a
    replacement node contacts ``d`` helpers (``k <= d < n``) and pulls
    ``β = C / (d - k + 1)`` bytes from each, so the total traffic to
    repair one chunk of size ``C`` is ``γ = d·β = d/(d-k+1)`` chunks —
    strictly less than the ``k`` chunks Reed-Solomon moves whenever
    ``d > k``, and minimal at ``d = n - 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if d < k:
        raise ValueError(f"MSR needs d >= k, got d={d} < k={k}")
    return d / (d - k + 1)


def mbr_repair_traffic(k: int, d: int) -> float:
    """MBR repair bandwidth γ(d) in chunk units: ``2d / (2d - k + 1)``.

    The minimum-bandwidth point of the same cut-set bound: repair
    traffic equals per-node storage (``α = γ``), dropping traffic below
    MSR at the price of each node storing ``2d/(2d-k+1) > 1`` chunks —
    see :func:`mbr_storage_per_chunk`.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if d < k:
        raise ValueError(f"MBR needs d >= k, got d={d} < k={k}")
    return 2.0 * d / (2.0 * d - k + 1)


def mbr_storage_per_chunk(k: int, d: int) -> float:
    """MBR per-node storage α in chunk units (equal to γ at the MBR point)."""
    return mbr_repair_traffic(k, d)


def scheme_transfer_steps(
    scheme: str, helpers: int, num_slices: int = 1
) -> float:
    """Serialized helper-transfer count on a scheme's critical path.

    The Theorem-1 step count generalized to ``d = helpers`` sources (for
    RS repair ``d = k`` and this reduces to the forms above):

    * ``star`` / ``traditional`` / ``staggered`` — all ``d`` transfers
      funnel into the repair site's ingress link.
    * ``ppr`` / ``mppr`` — the binomial aggregation tree needs
      ``ceil(log2(d+1))`` steps.
    * ``chain`` — ``(d + S - 1) / S`` slice-pipelined steps with ``S``
      slices per chunk (Li et al.; ``S = 1`` degenerates to ``d``).
    """
    if helpers < 1:
        raise ValueError(f"helpers must be >= 1, got {helpers}")
    if num_slices < 1:
        raise ValueError(f"num_slices must be >= 1, got {num_slices}")
    if scheme in ("traditional", "star", "staggered"):
        return float(helpers)
    if scheme in ("ppr", "mppr"):
        return float(ppr_timesteps(helpers))
    if scheme == "chain":
        return (helpers + num_slices - 1) / num_slices
    raise ValueError(f"unknown repair scheme: {scheme!r}")


def model_reconstruction_time(
    scheme: str,
    helpers: int,
    traffic_chunks: float,
    chunk_size: float,
    io_bandwidth: float,
    net_bandwidth: float,
    compute_seconds_per_byte: float,
    num_slices: int = 1,
) -> float:
    """Eq. (1) generalized over an arbitrary repair-cost model.

    ``helpers`` sources each ship ``β = traffic_chunks / helpers`` chunk
    units; the network and compute terms scale with the serialized share
    ``steps(scheme, d) * β`` of that traffic on the critical path.  With
    ``helpers = traffic_chunks = k`` this is *exactly*
    :func:`reconstruction_time_estimate` for the funnel schemes and
    :func:`ppr_reconstruction_time_estimate` for ``ppr``/``mppr``, so
    Reed-Solomon pricing is unchanged by the generalization.
    """
    if traffic_chunks <= 0:
        raise ValueError(f"traffic must be positive, got {traffic_chunks}")
    beta = traffic_chunks / helpers
    steps = scheme_transfer_steps(scheme, helpers, num_slices)
    serialized_chunks = steps * beta
    return (
        chunk_size / io_bandwidth
        + serialized_chunks * chunk_size / net_bandwidth
        + compute_seconds_per_byte * serialized_chunks * chunk_size
    )


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    k: int
    m: int
    users: str
    network_transfer_reduction: float
    per_server_bw_reduction: float


#: The deployments listed in Table 1.
TABLE1_CODES: "List[tuple[int, int, str]]" = [
    (6, 3, "QFS, Google ColossusFS"),
    (8, 3, "Yahoo Object Store"),
    (10, 4, "Facebook HDFS"),
    (12, 4, "Microsoft Azure"),
]

#: Paper-reported Table 1 percentages, keyed by (k, m).
TABLE1_PAPER: "Dict[tuple[int, int], tuple[float, float]]" = {
    (6, 3): (0.50, 0.50),
    (8, 3): (0.50, 0.625),
    (10, 4): (0.60, 0.60),
    (12, 4): (0.666, 0.666),
}


def table1() -> "List[Table1Row]":
    """Recompute Table 1 from the formulas above."""
    return [
        Table1Row(
            k=k,
            m=m,
            users=users,
            network_transfer_reduction=transfer_time_reduction(k),
            per_server_bw_reduction=per_server_bandwidth_reduction(k),
        )
        for k, m, users in TABLE1_CODES
    ]


@dataclass(frozen=True)
class CriticalPathOps:
    """Table 2: GF operations on the reconstruction critical path."""

    gf_multiplications: int
    xor_operations: int


def critical_path_traditional(k: int) -> CriticalPathOps:
    """Traditional: the repair site does k multiplies and ~k XORs serially."""
    return CriticalPathOps(gf_multiplications=k, xor_operations=k)


def critical_path_ppr(k: int) -> CriticalPathOps:
    """PPR: one multiply (parallel at the leaves), ceil(log2(k+1)) XORs."""
    return CriticalPathOps(
        gf_multiplications=1, xor_operations=ppr_timesteps(k)
    )
