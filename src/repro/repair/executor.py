"""Execute a repair plan on real buffers.

This is the correctness backbone of the reproduction: it walks a plan's
timesteps, computes each helper's partial result locally, XOR-merges at the
aggregators, and returns the destination's reconstructed chunk.  Tests
assert the result is byte-identical to centralized decode for every
strategy, every code, and randomized failure patterns — the paper's
associativity argument (§4.1) made executable.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro import obs
from repro.obs import causal
from repro.errors import PlanError
from repro.codes.recipe import RepairRecipe
from repro.repair.plan import DESTINATION, RepairPlan


def execute_plan(
    plan: RepairPlan, chunks: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Run ``plan`` against helper chunk buffers; return the rebuilt chunk.

    ``chunks`` maps helper chunk index -> full chunk buffer.  Raw transfers
    (star/staggered) ship rows of the helper's chunk and the destination
    applies the recipe; partial transfers (PPR) ship locally-combined
    results that merge en route.
    """
    recipe = plan.recipe
    for helper in recipe.helpers:
        if helper not in chunks:
            raise PlanError(f"missing buffer for helper chunk {helper}")

    ctx = causal.current()
    with obs.maybe_span(
        "repair.execute_plan",
        category="repair",
        strategy=plan.strategy,
        helpers=len(recipe.helpers),
        steps=plan.num_steps,
        **({"trace_id": ctx.trace_id} if ctx is not None else {}),
    ):
        if plan.strategy in ("star", "staggered"):
            return _execute_raw(plan, chunks)
        return _execute_partial(plan, chunks)


def _execute_raw(
    plan: RepairPlan, chunks: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Star/staggered: destination gathers raw rows, then decodes centrally."""
    recipe = plan.recipe
    received: Dict[int, np.ndarray] = {}
    for step in range(plan.num_steps):
        for transfer in plan.transfers_at(step):
            if transfer.dst != DESTINATION or not transfer.raw:
                raise PlanError(
                    f"{plan.strategy} plan must send raw rows to DESTINATION"
                )
            received[transfer.src] = np.asarray(
                chunks[transfer.src], dtype=np.uint8
            )
    return recipe.execute(received)


def _execute_partial(
    plan: RepairPlan, chunks: Mapping[int, np.ndarray]
) -> np.ndarray:
    """PPR: every node computes/merges partials; destination assembles."""
    recipe = plan.recipe
    # Local partial at every helper (the first-timestep scalar multiplies).
    state: Dict[int, Dict[int, np.ndarray]] = {
        helper: recipe.partial_result(helper, chunks[helper])
        for helper in recipe.helpers
    }
    state[DESTINATION] = {}
    for step in range(plan.num_steps):
        step_transfers = plan.transfers_at(step)
        # Within a step, all sends use pre-step state (parallel semantics).
        payloads = {t.src: state[t.src] for t in step_transfers}
        for transfer in step_transfers:
            if transfer.raw:
                raise PlanError("ppr plan cannot contain raw transfers")
            state[transfer.dst] = RepairRecipe.merge_partials(
                state[transfer.dst], payloads[transfer.src]
            )
    return recipe.assemble(state[DESTINATION])
