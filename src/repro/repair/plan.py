"""Repair plans: the communication schedule of a reconstruction.

A plan is a DAG of transfers between the recipe's helper chunks and the
repair destination, organized into logical timesteps.  Three strategies:

``star``
    Traditional repair (paper §3): every helper sends its raw read rows to
    the destination simultaneously; the destination's ingress link carries
    all ``k`` chunks and becomes the bottleneck.

``staggered``
    The strawman of §4.2: same star topology but transfers serialized
    one-by-one, avoiding congestion by under-utilizing every link.

``ppr``
    The paper's contribution (§4.1): helpers compute *partial results*
    locally and a binomial reduction tree XOR-merges them toward the
    destination in ``ceil(log2(k+1))`` timesteps; at every timestep all
    transfers have distinct sources and destinations, so each link carries
    at most one (partial-)chunk per step.

The PPR tree matches the paper's Fig. 2: with helpers ``h1..hk`` and the
destination last, at step ``t`` the node at reversed position ``q`` with
``q mod 2^(t+1) == 2^t`` sends to ``q - 2^t``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import PlanError
from repro.codes.recipe import RepairRecipe

#: Sentinel node id for the repair destination (repair site / client).
DESTINATION = -1

#: Known plan strategies.  "chain" is the repair-pipelining topology
#: (Li et al., ATC'17 — the line of follow-on work the paper seeded):
#: helpers form a path and, combined with slicing, network time approaches
#: a single C/B regardless of k.
STRATEGIES = ("star", "staggered", "ppr", "chain")


@dataclass(frozen=True)
class TransferSpec:
    """One edge of the plan: ``src`` ships rows to ``dst`` at ``step``.

    ``rows`` are lost-chunk row indices for partial results (PPR) or helper
    row indices for raw transfers (star/staggered); ``fraction`` is the
    transferred volume in units of one chunk.  ``raw`` distinguishes the
    two payload kinds.
    """

    src: int
    dst: int
    step: int
    rows: FrozenSet[int]
    fraction: float
    raw: bool


@dataclass(frozen=True)
class RepairPlan:
    """A complete repair schedule for one lost chunk."""

    strategy: str
    recipe: RepairRecipe
    transfers: Tuple[TransferSpec, ...]
    num_steps: int

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise PlanError(f"unknown strategy {self.strategy!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def participants(self) -> "Tuple[int, ...]":
        """All nodes involved: helpers plus the destination sentinel."""
        return tuple(self.recipe.helpers) + (DESTINATION,)

    def transfers_at(self, step: int) -> "List[TransferSpec]":
        return [t for t in self.transfers if t.step == step]

    def incoming(self, node: int) -> "List[TransferSpec]":
        return [t for t in self.transfers if t.dst == node]

    def outgoing(self, node: int) -> "List[TransferSpec]":
        return [t for t in self.transfers if t.src == node]

    def children_of(self, node: int) -> "List[int]":
        """Nodes whose transfer feeds ``node`` (aggregation inputs)."""
        return [t.src for t in self.incoming(node)]

    # ------------------------------------------------------------------
    # Closed-form cost metrics (the simulator measures the real thing)
    # ------------------------------------------------------------------
    def total_bytes(self, chunk_size: float) -> float:
        """Total bytes crossing the network."""
        return sum(t.fraction for t in self.transfers) * chunk_size

    def max_bytes_through_node(self, chunk_size: float) -> float:
        """Max cumulative ingress+egress bytes at any single node."""
        per_node: Dict[int, float] = {}
        for t in self.transfers:
            per_node[t.src] = per_node.get(t.src, 0.0) + t.fraction
            per_node[t.dst] = per_node.get(t.dst, 0.0) + t.fraction
        return max(per_node.values()) * chunk_size

    def max_ingress_bytes(self, chunk_size: float) -> float:
        """Max cumulative bytes into any single node's ingress link."""
        per_node: Dict[int, float] = {}
        for t in self.transfers:
            per_node[t.dst] = per_node.get(t.dst, 0.0) + t.fraction
        return max(per_node.values()) * chunk_size

    def estimate_transfer_time(
        self, chunk_size: float, bandwidth_bytes_per_sec: float
    ) -> float:
        """Idealized network time on homogeneous access links.

        Star: the destination ingress serializes everything.  Staggered:
        explicit serialization — same total.  PPR: per step, transfers are
        link-disjoint, so a step costs its largest transfer.
        """
        if self.strategy in ("star", "staggered"):
            inbound = sum(t.fraction for t in self.transfers if t.dst == DESTINATION)
            return inbound * chunk_size / bandwidth_bytes_per_sec
        total = 0.0
        for step in range(self.num_steps):
            step_transfers = self.transfers_at(step)
            if step_transfers:
                total += max(t.fraction for t in step_transfers)
        return total * chunk_size / bandwidth_bytes_per_sec

    def estimate_pipelined_transfer_time(
        self,
        chunk_size: float,
        bandwidth_bytes_per_sec: float,
        num_slices: int,
    ) -> float:
        """Idealized network time when transfers are cut into slices.

        With S slices flowing in waves through a partial-result plan of
        depth D, the pipeline fills in D steps and drains S-1 more:
        ``(D + S - 1) * C / (S * B)``.  That wave term is only reachable
        when no single ingress link must carry more: a tree node with c
        incoming transfers still moves ``c * C`` through its ingress, so
        the estimate is the max of the wave time and the worst ingress
        backlog.  For the chain every node receives exactly one chunk, so
        large S approaches a single ``C/B`` — repair pipelining's headline
        result; for the PPR tree the destination's ``ceil(log2(k+1))``
        arrivals remain the floor.
        """
        if self.strategy in ("star", "staggered"):
            return self.estimate_transfer_time(
                chunk_size, bandwidth_bytes_per_sec
            )
        if num_slices < 1:
            raise PlanError(f"num_slices must be >= 1, got {num_slices}")
        per_wave = chunk_size / num_slices / bandwidth_bytes_per_sec
        wave_time = (self.num_steps + num_slices - 1) * per_wave
        ingress_floor = (
            self.max_ingress_bytes(chunk_size) / bandwidth_bytes_per_sec
        )
        return max(wave_time, ingress_floor)

    def memory_footprint_bound(self, chunk_size: float) -> float:
        """Paper §4.3: max chunks any node holds simultaneously.

        A node holds one buffer per incoming transfer plus its own partial.
        """
        worst = 1
        for node in self.participants:
            held = len(self.incoming(node)) + (0 if node == DESTINATION else 1)
            worst = max(worst, held)
        return worst * chunk_size


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_star_plan(recipe: RepairRecipe) -> RepairPlan:
    """Traditional repair: all helpers → destination in one step, raw rows."""
    transfers = tuple(
        TransferSpec(
            src=helper,
            dst=DESTINATION,
            step=0,
            rows=recipe.term_for(helper).read_rows,
            fraction=recipe.raw_fraction(helper),
            raw=True,
        )
        for helper in recipe.helpers
    )
    return RepairPlan("star", recipe, transfers, num_steps=1)


def build_staggered_plan(recipe: RepairRecipe) -> RepairPlan:
    """§4.2 strawman: helpers → destination one at a time."""
    transfers = tuple(
        TransferSpec(
            src=helper,
            dst=DESTINATION,
            step=step,
            rows=recipe.term_for(helper).read_rows,
            fraction=recipe.raw_fraction(helper),
            raw=True,
        )
        for step, helper in enumerate(recipe.helpers)
    )
    return RepairPlan("staggered", recipe, transfers, num_steps=len(transfers))


def ppr_num_steps(num_helpers: int) -> int:
    """``ceil(log2(k+1))`` logical timesteps for ``k`` helpers (Theorem 1)."""
    if num_helpers < 1:
        raise PlanError("PPR needs at least one helper")
    return math.ceil(math.log2(num_helpers + 1))


def ppr_position_loads(k: int) -> "List[int]":
    """Aggregation receive-count per helper tree position.

    Position ``p`` (0-based; the destination sits after position k-1)
    corresponds to reversed index ``q = k - p``; the returned list says
    how many incoming transfers the node placed at each position handles.
    Used for §4.2's heterogeneous extension: put the servers with the
    fattest links where the aggregation load is.
    """
    total = k + 1
    receives = [0] * total  # indexed by q
    for step in range(ppr_num_steps(k)):
        stride = 1 << step
        for q in range(stride, total, 2 * stride):
            receives[q - stride] += 1
    return [receives[total - 1 - p] for p in range(k)]


def build_ppr_plan(
    recipe: RepairRecipe,
    helper_order: "Sequence[int] | None" = None,
) -> RepairPlan:
    """The binomial reduction tree of §4.1 / Fig. 2.

    Nodes are ordered ``[h1 .. hk, DESTINATION]``; with reversed positions
    ``q`` (destination at q=0), node q sends to ``q - 2^t`` at the step t
    where ``q mod 2^(t+1) == 2^t``.  Transfer sizes account for sub-chunk
    recipes: a node ships the union of lost-chunk rows its subtree covers.

    ``helper_order`` optionally assigns helpers to tree positions (must be
    a permutation of ``recipe.helpers``) — §4.2: place high-capacity
    servers at the positions :func:`ppr_position_loads` marks as busy.
    """
    if helper_order is None:
        helpers = list(recipe.helpers)
    else:
        helpers = list(helper_order)
        if sorted(helpers) != sorted(recipe.helpers):
            raise PlanError(
                "helper_order must be a permutation of the recipe helpers"
            )
    k = len(helpers)
    num_steps = ppr_num_steps(k)
    nodes = helpers + [DESTINATION]
    total = len(nodes)

    def node_at_q(q: int) -> int:
        return nodes[total - 1 - q]

    # Rows each node will ship = own partial rows ∪ rows received so far.
    own_rows: Dict[int, FrozenSet[int]] = {
        h: recipe.term_for(h).output_rows for h in helpers
    }
    own_rows[DESTINATION] = frozenset()
    accumulated = dict(own_rows)

    transfers: List[TransferSpec] = []
    for step in range(num_steps):
        stride = 1 << step
        pending: List[Tuple[int, int]] = []
        for q in range(stride, total, 2 * stride):
            pending.append((q, q - stride))
        for q_src, q_dst in pending:
            src = node_at_q(q_src)
            dst = node_at_q(q_dst)
            rows = accumulated[src]
            transfers.append(
                TransferSpec(
                    src=src,
                    dst=dst,
                    step=step,
                    rows=rows,
                    fraction=len(rows) / recipe.rows,
                    raw=False,
                )
            )
        # Apply merges after scheduling the whole step (sends are parallel).
        for q_src, q_dst in pending:
            src = node_at_q(q_src)
            dst = node_at_q(q_dst)
            accumulated[dst] = accumulated[dst] | accumulated[src]
    return RepairPlan("ppr", recipe, tuple(transfers), num_steps=num_steps)


def build_chain_plan(recipe: RepairRecipe) -> RepairPlan:
    """Repair pipelining's topology: helpers form a path to the destination.

    ``h1 -> h2 -> ... -> hk -> DESTINATION``: each node XORs its own
    partial into what it received and forwards.  Without slicing this is
    as slow as staggered transfer (k serialized hops); cut into S slices
    the hops overlap and total network time tends to ``C/B``.
    """
    helpers = list(recipe.helpers)
    accumulated: FrozenSet[int] = frozenset()
    transfers: List[TransferSpec] = []
    for step, helper in enumerate(helpers):
        accumulated = accumulated | recipe.term_for(helper).output_rows
        dst = helpers[step + 1] if step + 1 < len(helpers) else DESTINATION
        transfers.append(
            TransferSpec(
                src=helper,
                dst=dst,
                step=step,
                rows=accumulated,
                fraction=len(accumulated) / recipe.rows,
                raw=False,
            )
        )
    return RepairPlan("chain", recipe, tuple(transfers), num_steps=len(helpers))


def build_plan(strategy: str, recipe: RepairRecipe) -> RepairPlan:
    """Dispatch on strategy name."""
    if strategy == "star":
        return build_star_plan(recipe)
    if strategy == "staggered":
        return build_staggered_plan(recipe)
    if strategy == "ppr":
        return build_ppr_plan(recipe)
    if strategy == "chain":
        return build_chain_plan(recipe)
    raise PlanError(f"unknown strategy {strategy!r}; known: {STRATEGIES}")
