"""Repair planning and analysis: who sends what to whom, and when.

Given a :class:`~repro.codes.recipe.RepairRecipe` (the linear equation),
this package decides the *communication structure* of a repair:

* :mod:`repro.repair.plan` — the three strategies the paper discusses:
  traditional **star** (all k helpers funnel into the repair site),
  **staggered** serial transfer (§4.2's strawman), and **PPR**'s binomial
  reduction tree finishing in ``ceil(log2(k+1))`` timesteps.
* :mod:`repro.repair.executor` — executes any plan on real buffers,
  proving distributed aggregation bit-exactly matches centralized decode.
* :mod:`repro.repair.theory` — Theorem 1, Table 1 and Table 2 closed forms.
"""

from repro.repair.plan import (
    DESTINATION,
    RepairPlan,
    TransferSpec,
    build_plan,
    build_ppr_plan,
    build_staggered_plan,
    build_star_plan,
)
from repro.repair.executor import execute_plan
from repro.repair import theory

__all__ = [
    "DESTINATION",
    "RepairPlan",
    "TransferSpec",
    "build_plan",
    "build_ppr_plan",
    "build_staggered_plan",
    "build_star_plan",
    "execute_plan",
    "theory",
]
