#!/usr/bin/env python3
"""CI smoke: the fleet collector must serve a one-RPC cockpit.

Brings up a live loopback-TCP fleet with collector pushing enabled, runs
one PPR repair, lets a few heartbeat cadences elapse, and requires:

1. every node's pushed batches landed (ingest counters, retained points
   within the advertised hard bound),
2. the fleet rollup's ``bytes.moved`` total to equal the sum of the
   per-node series read directly from the in-process servers (the
   push path loses nothing),
3. ``repro top --collector`` to render every server from a single
   COLLECTOR_QUERY RPC, and
4. ``repro query`` to serve a 10s-tier window and a Prometheus
   exposition of the whole fleet.

Usage::

    PYTHONPATH=src python tools/collector_smoke.py
"""

from __future__ import annotations

import asyncio
import sys

CLI_TIMEOUT_S = 60


async def run_cli(*argv: str) -> str:
    """One ``repro`` CLI invocation while the fleet is up."""
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
    )
    stdout, stderr = await asyncio.wait_for(
        proc.communicate(), timeout=CLI_TIMEOUT_S
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(argv)} exited {proc.returncode}:\n"
            f"{stderr.decode()}"
        )
    return stdout.decode()


async def smoke() -> int:
    from repro.live import LiveCluster, LiveConfig
    from repro.live.wire import MessageType

    config = LiveConfig(
        heartbeat_interval=0.2,
        failure_detection_timeout=2.0,
        rpc_timeout=5.0,
        repair_timeout=30.0,
        collector_enabled=True,
    )
    async with LiveCluster(
        num_servers=8, config=config, payload_bytes=1152
    ) as cluster:
        stripe = await cluster.write_stripe("rs(4,2)")
        await cluster.kill_server(stripe.hosts[1])
        report = await cluster.repair(
            stripe.stripe_id, lost_index=1, strategy="ppr"
        )
        assert report.result.verified, "repair failed under collector"
        # A few cadences so every survivor ships its post-repair state.
        await asyncio.sleep(3 * config.heartbeat_interval)

        meta_client = cluster.pool.get(cluster.meta.address)

        stats = (
            await meta_client.call(
                MessageType.COLLECTOR_QUERY, {"what": "stats"}
            )
        ).payload
        alive = [s for s in cluster.servers.values() if s.alive]
        assert stats["batches_ingested"] >= len(alive), stats
        assert stats["samples_ingested"] > 0, stats
        assert stats["retained_samples"] <= stats["retained_bound"], (
            "collector retention exceeded its hard bound"
        )
        print(
            f"ingest: {stats['batches_ingested']} batches, "
            f"{stats['samples_ingested']} samples from "
            f"{stats['nodes']} nodes; retained "
            f"{stats['retained_samples']}/{stats['retained_bound']}"
        )

        # Rollup conservation: the fleet total equals the sum of the
        # latest per-node values read straight off the server objects.
        fleet = (
            await meta_client.call(
                MessageType.COLLECTOR_QUERY, {"what": "fleet"}
            )
        ).payload
        rollup = {r["name"]: r for r in fleet["rollup"]}
        assert "bytes.moved" in rollup, sorted(rollup)
        truth = 0.0
        for server in alive:
            last = server.telemetry.series(
                "bytes.moved", node=server.server_id
            ).last()
            if last is not None:
                truth += last[1]
        got = rollup["bytes.moved"]["sum"]
        assert abs(got - truth) < 1e-6, (
            f"fleet rollup bytes.moved {got} != in-process truth {truth}"
        )
        print(f"fleet rollup bytes.moved == in-process truth ({got:.0f}B)")

        meta_addr = f"{cluster.meta.address.host}:{cluster.meta.address.port}"

        # One-RPC cockpit over the real CLI.
        top_out = await run_cli(
            "top", "--meta", meta_addr, "--collector",
            "--iterations", "1", "--no-color",
        )
        print(top_out)
        missing = [
            s.server_id for s in alive if s.server_id not in top_out
        ]
        assert not missing, f"top --collector missing nodes: {missing}"
        assert "collector" in top_out.lower() or "repro top" in top_out

        # Tiered query over the CLI.
        query_out = await run_cli(
            "query", "--meta", meta_addr,
            "--metric", "bytes.moved", "--tier", "10s",
        )
        print(query_out)
        assert "[10s]" in query_out or "10s" in query_out, query_out
        assert "bytes.moved" in query_out

        # Prometheus federation view of the whole fleet.
        prom_out = await run_cli("query", "--meta", meta_addr, "--prom")
        assert "repro_bytes_moved" in prom_out, prom_out[:400]
        assert 'node="' in prom_out, "prom exposition lost node labels"
        print(
            f"prom exposition: {len(prom_out.splitlines())} lines, "
            f"node labels intact"
        )

    print("collector smoke OK")
    return 0


def main() -> int:
    return asyncio.run(smoke())


if __name__ == "__main__":
    sys.exit(main())
