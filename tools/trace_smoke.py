#!/usr/bin/env python3
"""CI smoke: one live PPR repair, traced end to end, must conform.

Spawns a real ``repro serve`` cluster (metaserver + chunkservers over
loopback TCP) with one chunk killed, records a causally-traced live
repair with ``repro trace record --live``, then runs
``repro trace conform`` on the resulting trace and exits with its
status.  This gates the whole causal pipeline — wire-header context
propagation, explicit gid/deps emission, DAG stitching, critical-path
extraction, and the Theorem-1 structure checks — on every CI run.

Timing checks are expected to report ``skip`` (live traces carry no
modeled bandwidths); the structural checks must pass.

Usage::

    PYTHONPATH=src python tools/trace_smoke.py [--strategy ppr]
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import tempfile
import pathlib

SERVE_READY_TIMEOUT_S = 60
REPAIR_TIMEOUT_S = 120


def start_cluster() -> "tuple[subprocess.Popen, str, str]":
    """Spawn ``repro serve`` and block until READY; returns (proc, meta, stripe)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--heartbeat-interval", "0.3",
            "--stripe", "rs(4,2)",
            "--kill-index", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    meta = stripe = None
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if not line:
            err = proc.stderr.read() if proc.stderr else ""
            raise RuntimeError(f"serve exited before READY:\n{err}")
        line = line.strip()
        if line.startswith("META "):
            meta = line.split()[1]
        elif line.startswith("STRIPE "):
            stripe = line.split()[1]
        elif line == "READY":
            break
    if meta is None or stripe is None:
        raise RuntimeError("serve reached READY without META/STRIPE lines")
    return proc, meta, stripe


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strategy",
        default="ppr",
        help="repair strategy to trace (default: ppr)",
    )
    args = parser.parse_args(argv)

    tmpdir = pathlib.Path(tempfile.mkdtemp(prefix="trace-smoke-"))
    trace_path = tmpdir / f"live-{args.strategy}.jsonl"

    proc, meta, stripe = start_cluster()
    print(f"cluster up: meta={meta} stripe={stripe}")
    try:
        record = subprocess.run(
            [
                sys.executable, "-m", "repro", "trace", "record", "--live",
                "--meta", meta,
                "--stripe-id", stripe,
                "--strategy", args.strategy,
                "--out", str(trace_path),
            ],
            timeout=REPAIR_TIMEOUT_S,
        )
        if record.returncode != 0:
            print("trace record --live failed", file=sys.stderr)
            return record.returncode
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    subprocess.run(
        [
            sys.executable, "-m", "repro", "trace", "critical-path",
            str(trace_path),
        ],
        timeout=60,
    )
    conform = subprocess.run(
        [sys.executable, "-m", "repro", "trace", "conform", str(trace_path)],
        timeout=60,
    )
    return conform.returncode


if __name__ == "__main__":
    sys.exit(main())
