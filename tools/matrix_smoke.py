#!/usr/bin/env python3
"""CI smoke: a reduced redundancy matrix must stay sane end to end.

Runs a 2 scheme × 2 code × 2 placement sweep (star/ppr × rs/msr ×
random/copyset) at smoke sizing through the Monte Carlo reliability
engine and requires:

1. every cell to produce a finite, positive MTTDL and nonzero repair
   traffic,
2. per-cell seed independence — one cell re-run alone is bit-identical
   to its in-matrix fingerprint,
3. the Markov-validated baseline to bracket: the engine, configured as
   the closed-form birth–death chain, must contain the analytic
   RS MTTDL inside its simulated 95% CI, and
4. the rendered comparison table to carry every cell.

Usage::

    PYTHONPATH=src python tools/matrix_smoke.py
"""

from __future__ import annotations

import math
import sys


def main() -> int:
    from repro.redundancy import MatrixConfig, run_matrix
    from repro.reliability.engine import ReliabilityEngine

    config = MatrixConfig(
        schemes=("star", "ppr"),
        codes=("rs(4,2)", "msr(4,2)"),
        placements=("random", "copyset"),
        num_stripes=80,
        trials=2,
        horizon_years=1.5,
        validation_trials=250,
    )
    result = run_matrix(config)

    failures = []

    # 1. Every cell is finite and meaningful.
    for cell in result.cells:
        mttdl, _, _ = cell.report.mttdl_years()
        if not (math.isfinite(mttdl) and mttdl > 0):
            failures.append(f"non-finite MTTDL in {(cell.scheme, cell.code, cell.placement)}")
        if cell.report.repair_traffic_bytes_per_stripe_year() <= 0:
            failures.append(f"no repair traffic in {(cell.scheme, cell.code, cell.placement)}")

    # 2. Cell independence: re-run one cell alone, compare fingerprints.
    probe = result.cell("ppr", "msr(4,2)", "copyset")
    alone = ReliabilityEngine(
        config.cell_config("ppr", "msr(4,2)", "copyset")
    ).run()
    alone_losses = [t.losses for t in alone.trials]
    matrix_losses = [t.losses for t in probe.report.trials]
    if alone_losses != matrix_losses:
        failures.append(
            f"cell not independently reproducible: "
            f"{alone_losses} != {matrix_losses}"
        )

    # 3. Markov bracket on the rs x random baseline.
    validation = result.validation
    if validation is None:
        failures.append("no Markov validation ran")
    elif not validation.inside_ci:
        failures.append(
            f"Markov MTTDL {validation.markov_mttdl_hours:.1f}h outside "
            f"simulated CI [{validation.ci_low_hours:.1f}, "
            f"{validation.ci_high_hours:.1f}]h"
        )

    # 4. The rendered table carries every cell.
    report = result.to_experiment().report
    for cell in result.cells:
        if cell.code not in report or cell.placement not in report:
            failures.append(f"cell {(cell.scheme, cell.code, cell.placement)} missing from report")
            break

    print(report)
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"matrix smoke OK: {len(result.cells)} cells, Markov "
        f"{validation.markov_mttdl_hours:.1f}h inside "
        f"[{validation.ci_low_hours:.1f}, {validation.ci_high_hours:.1f}]h"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
