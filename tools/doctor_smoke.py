#!/usr/bin/env python3
"""CI smoke: the doctor must diagnose a wedged-but-alive helper.

Brings up a live loopback-TCP cluster with the stalled-stream watchdog
armed, wedges one mid-chain helper between slices of a pipelined
``chain --slices 8`` repair (the helper keeps answering PING — only the
watchdog can find it), and requires:

1. the repair to complete byte-identically after exactly one replan
   that excluded the wedged helper,
2. a ``stalled-stream`` incident bundle mirrored to ``--incident-dir``
   (the artifact CI uploads),
3. ``repro doctor list/show/explain --dir`` to render that bundle with
   the stalled hop marked on the critical path, and
4. ``repro trace record --profile`` to emit a non-empty collapsed-stack
   flame graph (the profiler half of the subsystem).

Usage::

    PYTHONPATH=src python tools/doctor_smoke.py \
        [--incident-dir DIR] [--profile FILE]
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import subprocess
import sys
import tempfile

import numpy as np

STALL_DEADLINE_S = 0.45
CLI_TIMEOUT_S = 120


async def run_stalled_repair(incident_dir: str) -> str:
    """One wedged-helper chain repair; returns the culprit's server id."""
    from repro.live import LiveCluster, LiveConfig

    config = LiveConfig(
        heartbeat_interval=0.3,
        failure_detection_timeout=2.0,
        connect_timeout=1.0,
        rpc_timeout=2.0,
        partial_wait_timeout=5.0,
        repair_timeout=15.0,
        max_retries=1,
        backoff_base=0.02,
        backoff_max=0.1,
        max_attempts=2,
        stream_stall_deadline=STALL_DEADLINE_S,
        incident_dir=incident_dir,
    )
    async with LiveCluster(
        num_servers=10, config=config, payload_bytes=1152
    ) as cluster:
        stripe = await cluster.write_stripe("rs(6,3)")
        lost = 2
        truth = cluster.truth_payload(stripe.chunk_ids[lost])
        await cluster.kill_server(stripe.hosts[lost])

        wedged: "list[str]" = []

        def on_attempt(info) -> None:
            if info.attempt != 1:
                return
            victim = next(
                a for a in info.aggregators if a != info.destination
            )
            wedged.append(victim)
            cluster.server(victim).stall_stream_at_slice = 4

        report = await cluster.repair(
            stripe.stripe_id,
            lost_index=lost,
            strategy="chain",
            on_attempt=on_attempt,
            num_slices=8,
        )

        assert wedged, "no helper was wedged"
        victim = wedged[0]
        assert report.attempts == 2, (
            f"expected exactly one replan, got {report.attempts} attempts"
        )
        assert victim in report.excluded, (
            f"culprit {victim} not excluded (excluded={report.excluded})"
        )
        assert cluster.server(victim).alive, "culprit should never crash"
        assert report.result.verified
        assert np.array_equal(report.payload, truth), "bytes differ"

        stalled = [
            bundle
            for server in cluster.servers.values()
            for bundle in server.incidents.bundles()
            if bundle["detector"] == "stalled-stream"
        ]
        assert stalled, "watchdog filed no stalled-stream incident"
        blamed = {b["anomaly"]["data"]["src"] for b in stalled}
        cleared = {b["node"] for b in stalled}
        assert blamed - cleared == {victim}, (
            f"blame math wrong: blamed={blamed} cleared={cleared} "
            f"victim={victim}"
        )
        return victim


def run_cli(*argv: str) -> str:
    """Run one ``repro`` CLI invocation; returns stdout, raises on failure."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=CLI_TIMEOUT_S,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(argv)} exited {result.returncode}:\n"
            f"{result.stderr}"
        )
    return result.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--incident-dir",
        default="incidents",
        help="directory incident bundles are mirrored to (CI artifact)",
    )
    parser.add_argument(
        "--profile",
        default="doctor-smoke.collapsed",
        help="collapsed-stack flame graph output path (CI artifact)",
    )
    args = parser.parse_args(argv)

    incident_dir = pathlib.Path(args.incident_dir)
    incident_dir.mkdir(parents=True, exist_ok=True)

    victim = asyncio.run(run_stalled_repair(str(incident_dir)))
    bundles = sorted(incident_dir.glob("incident-*.json"))
    if not bundles:
        print(f"no incident-*.json written to {incident_dir}", file=sys.stderr)
        return 1
    print(f"repair replanned around {victim}; {len(bundles)} bundle(s):")
    for path in bundles:
        print(f"  {path}")

    # The offline CLI must render what the watchdog filed.
    listing = run_cli("doctor", "list", "--dir", str(incident_dir))
    print(listing)
    if "stalled-stream" not in listing:
        print("doctor list shows no stalled-stream incident", file=sys.stderr)
        return 1
    incident_id = next(
        line.split()[0]
        for line in listing.splitlines()[1:]
        if "stalled-stream" in line
    )
    shown = run_cli("doctor", "show", incident_id, "--dir", str(incident_dir))
    print(shown)
    if "** STALLED **" not in shown:
        print("doctor show did not mark the stalled hop", file=sys.stderr)
        return 1
    explained = run_cli(
        "doctor", "explain", incident_id, "--dir", str(incident_dir)
    )
    print(explained)
    if "STREAM_DATA" not in explained:
        print("doctor explain missing the stall narrative", file=sys.stderr)
        return 1

    # Profiler half: a simulated repair must emit a flame graph.
    trace_out = pathlib.Path(tempfile.mkdtemp(prefix="doctor-smoke-"))
    run_cli(
        "trace", "record",
        "--strategy", "ppr",
        "--out", str(trace_out / "sim.jsonl"),
        "--profile", args.profile,
    )
    profile = pathlib.Path(args.profile)
    if not profile.exists() or not profile.read_text().strip():
        print(f"empty or missing flame graph {profile}", file=sys.stderr)
        return 1
    print(f"flame graph: {profile} ({len(profile.read_text().splitlines())} stacks)")
    print("doctor smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
