#!/usr/bin/env python3
"""Check that intra-repo markdown links point at files that exist.

Scans every tracked ``*.md`` file, extracts inline links and image
references, and verifies that each relative target resolves inside the
repository.  External schemes (http/https/mailto), pure anchors and
generated paths (``results/``) are skipped.

Run from anywhere:  python tools/check_docs_links.py
Exit status is the number of broken links (0 = all good).
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline markdown link or image: [text](target) / ![alt](target)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:")

#: directories whose contents are generated or vendored, not tracked docs
_SKIP_DIRS = {".git", "results", "__pycache__", ".pytest_cache", "build", "dist"}


def iter_markdown_files() -> "list[pathlib.Path]":
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        parts = set(path.relative_to(REPO_ROOT).parts[:-1])
        if parts & _SKIP_DIRS:
            continue
        files.append(path)
    return files


def check_file(path: pathlib.Path) -> "list[str]":
    errors = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: link-looking text in examples is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]  # drop any fragment
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            errors.append(f"{path.relative_to(REPO_ROOT)}: escapes repo: {target}")
        elif not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link: {target}")
    return errors


def main() -> int:
    errors: "list[str]" = []
    files = iter_markdown_files()
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown files: {len(errors)} broken link(s)")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
