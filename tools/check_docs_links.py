#!/usr/bin/env python3
"""Check that the docs' links and CLI examples are not stale.

Two passes over every tracked ``*.md`` file:

1. **Links** — extracts inline links and image references and verifies
   that each relative target resolves inside the repository.  External
   schemes (http/https/mailto), pure anchors and generated paths
   (``results/``) are skipped.
2. **CLI examples** — extracts every ``python -m repro …`` invocation
   from fenced code blocks and smoke-parses it against the real
   argument parser (``repro.cli.build_parser``), so a renamed
   subcommand or flag breaks the docs build instead of the reader.

Run from anywhere:  python tools/check_docs_links.py
Exit status is the number of broken links + stale commands (0 = all good).
"""

from __future__ import annotations

import pathlib
import re
import shlex
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline markdown link or image: [text](target) / ![alt](target)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:")

#: directories whose contents are generated or vendored, not tracked docs
_SKIP_DIRS = {
    ".git", ".claude", "results", "__pycache__", ".pytest_cache",
    "build", "dist",
}


def iter_markdown_files() -> "list[pathlib.Path]":
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        parts = set(path.relative_to(REPO_ROOT).parts[:-1])
        if parts & _SKIP_DIRS:
            continue
        files.append(path)
    return files


def check_file(path: pathlib.Path) -> "list[str]":
    errors = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: link-looking text in examples is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]  # drop any fragment
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            errors.append(f"{path.relative_to(REPO_ROOT)}: escapes repo: {target}")
        elif not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link: {target}")
    return errors


#: one fenced code block (the link pass strips these; the CLI pass reads them)
_FENCE = re.compile(r"```[^\n]*\n(.*?)```", re.DOTALL)


def extract_repro_commands(path: pathlib.Path) -> "list[tuple[int, str]]":
    """``python -m repro …`` invocations inside fenced blocks.

    Returns ``(line_number, command)`` pairs with shell continuations
    (``\\`` line endings) joined, so multi-line examples are validated
    as the single command a reader would paste.
    """
    text = path.read_text(encoding="utf-8")
    commands = []
    for block in _FENCE.finditer(text):
        body = block.group(1)
        start_line = text.count("\n", 0, block.start(1)) + 1
        joined = body.replace("\\\n", " ")
        consumed = 0
        for raw in joined.split("\n"):
            line = raw.strip()
            lineno = start_line + body.count("\n", 0, consumed)
            consumed += len(raw) + 1
            if line.startswith("$ "):
                line = line[2:]
            if line.startswith("#"):
                continue
            if "python -m repro " in line:
                command = line[line.index("python -m repro "):]
                commands.append((lineno, command))
    return commands


def check_cli_examples(path: pathlib.Path, parser) -> "list[str]":
    """Smoke-parse each documented ``repro`` command against the CLI."""
    errors = []
    for lineno, command in extract_repro_commands(path):
        rel = path.relative_to(REPO_ROOT)
        try:
            argv = shlex.split(command, comments=True)
        except ValueError as exc:
            errors.append(f"{rel}:{lineno}: unparseable example: {exc}")
            continue
        # drop "python -m repro" and anything shell-side (pipes, redirects)
        for stop in ("|", ">", ">>", "2>", "&&", ";"):
            if stop in argv:
                argv = argv[: argv.index(stop)]
        argv = argv[3:]
        if not argv:
            continue
        try:
            parser.parse_args(argv)
        except SystemExit as exc:
            if exc.code not in (0, None):
                errors.append(
                    f"{rel}:{lineno}: stale CLI example: "
                    f"python -m repro {' '.join(argv)}"
                )
    return errors


def load_parser():
    """The real CLI parser, importable without an installed package."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    return build_parser()


def main() -> int:
    errors: "list[str]" = []
    files = iter_markdown_files()
    parser = load_parser()
    commands = 0
    for path in files:
        errors.extend(check_file(path))
        cli_errors = check_cli_examples(path, parser)
        commands += len(extract_repro_commands(path))
        errors.extend(cli_errors)
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files "
        f"({commands} CLI examples): {len(errors)} problem(s)"
    )
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
