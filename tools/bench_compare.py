#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json against baselines.

Every ``benchmarks/bench_<name>.py`` module emits a machine-readable
``BENCH_<name>.json`` (see ``benchmarks/conftest.py``).  This tool
compares a directory of freshly generated files against the committed
baselines in ``results/`` and fails when a kept metric drifts outside
the tolerance band.

Which metrics are compared
    pytest-benchmark timing stats other than the median (``.min`` /
    ``.max`` / ``.mean`` / ``.stddev`` / ``.rounds``) are noisy across
    machines and are skipped.  ``.median`` timings and all experiment
    metrics saved through ``save_report`` (simulator output — fully
    deterministic) are kept.  Records are keyed by
    ``(metric, sorted config items, occurrence index)`` so the same
    metric measured under different workload configs — or repeated
    per-row — compares against its true counterpart.

Usage::

    python tools/bench_compare.py --fresh /tmp/bench-out
    python tools/bench_compare.py --fresh results --tolerance 0.25

Exit status: 0 when every compared metric is within tolerance, 1 on any
regression/improvement outside the band or a missing counterpart file.
Comparing the baselines against themselves is always a pass.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
from typing import Dict, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Default committed-baseline directory.
DEFAULT_BASELINE_DIR = REPO_ROOT / "results"

#: Relative drift allowed for kept metrics (0.25 == +/-25%).
DEFAULT_TOLERANCE = 0.25

#: Unstable pytest-benchmark stat suffixes, never compared.
SKIP_SUFFIXES = (".min", ".max", ".mean", ".stddev", ".rounds")

#: Baseline values this close to zero are compared absolutely instead.
_ABS_EPSILON = 1e-12

#: (metric name, frozen config, occurrence index) -> value
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...], int]


def load_metrics(path: pathlib.Path) -> "Dict[MetricKey, float]":
    """Keyed metric values from one BENCH_*.json file.

    Repeated (metric, config) pairs — e.g. per-row experiment columns
    that share a module config — are disambiguated by their occurrence
    index, which is stable because emission order is deterministic.
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    metrics: "Dict[MetricKey, float]" = {}
    counts: "Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int]" = {}
    for record in payload.get("metrics", []):
        name = str(record["metric"])
        if name.endswith(SKIP_SUFFIXES):
            continue
        config = tuple(sorted(
            (str(k), str(v)) for k, v in (record.get("config") or {}).items()
        ))
        index = counts.get((name, config), 0)
        counts[(name, config)] = index + 1
        metrics[(name, config, index)] = float(record["value"])
    return metrics


def compare_file(
    baseline: pathlib.Path,
    fresh: pathlib.Path,
    tolerance: float,
) -> "Tuple[List[Dict[str, object]], int]":
    """Compare one fresh file against its baseline.

    Returns (rows for the delta table, number of failures).
    """
    base_metrics = load_metrics(baseline)
    fresh_metrics = load_metrics(fresh)
    rows: "List[Dict[str, object]]" = []
    failures = 0
    for key in sorted(base_metrics):
        name, config, index = key
        base_value = base_metrics[key]
        fresh_value = fresh_metrics.get(key)
        if fresh_value is None:
            rows.append({
                "metric": name, "config": config, "index": index,
                "baseline": base_value, "fresh": None,
                "delta_pct": None, "status": "MISSING",
            })
            failures += 1
            continue
        if not math.isfinite(base_value) or not math.isfinite(fresh_value):
            # Non-finite metrics (e.g. an unbounded MTTDL CI from a
            # zero-loss cell) compare by identity: inf == inf passes,
            # inf vs finite — or any nan — fails.
            ok = base_value == fresh_value
            delta_pct = 0.0 if ok else math.inf
        elif abs(base_value) <= _ABS_EPSILON:
            ok = abs(fresh_value) <= _ABS_EPSILON
            delta_pct = 0.0 if ok else math.inf
        else:
            delta_pct = (fresh_value - base_value) / abs(base_value) * 100.0
            ok = abs(delta_pct) <= tolerance * 100.0
        if not ok:
            failures += 1
        rows.append({
            "metric": name, "config": config, "index": index,
            "baseline": base_value, "fresh": fresh_value,
            "delta_pct": delta_pct, "status": "ok" if ok else "FAIL",
        })
    return rows, failures


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _fmt_delta(delta) -> str:
    if delta is None:
        return "-"
    if math.isinf(delta):
        return "inf"
    return f"{delta:+.1f}%"


def render_table(slug: str, rows: "List[Dict[str, object]]") -> str:
    """The per-file delta table, failures always shown, passes elided
    beyond a short head so CI logs stay readable."""
    lines = [f"== {slug} =="]
    header = (
        f"  {'METRIC':<44} {'BASELINE':>12} {'FRESH':>12} "
        f"{'DELTA':>8}  STATUS"
    )
    lines.append(header)
    shown_ok = 0
    elided = 0
    for row in rows:
        if row["status"] == "ok":
            shown_ok += 1
            if shown_ok > 10:
                elided += 1
                continue
        label = row["metric"]
        if row["index"]:
            label = f"{label}#{row['index']}"
        lines.append(
            f"  {label:<44} {_fmt_value(row['baseline']):>12} "
            f"{_fmt_value(row['fresh']):>12} "
            f"{_fmt_delta(row['delta_pct']):>8}  {row['status']}"
        )
    if elided:
        lines.append(f"  ... {elided} more metrics within tolerance")
    return "\n".join(lines)


def compare_dirs(
    baseline_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    tolerance: float = DEFAULT_TOLERANCE,
    out=sys.stdout,
) -> int:
    """Compare every baseline BENCH_*.json against its fresh counterpart.

    Returns the total failure count (0 == gate passes).
    """
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    baselines = [p for p in baselines if not p.name.endswith(".trace.json")]
    if not baselines:
        print(f"no BENCH_*.json baselines in {baseline_dir}", file=out)
        return 1
    total_failures = 0
    compared = 0
    for baseline in baselines:
        fresh = fresh_dir / baseline.name
        slug = baseline.stem[len("BENCH_"):]
        if not fresh.exists():
            print(f"== {slug} ==\n  missing fresh file: {fresh}", file=out)
            total_failures += 1
            continue
        rows, failures = compare_file(baseline, fresh, tolerance)
        compared += len(rows)
        total_failures += failures
        print(render_table(slug, rows), file=out)
    verdict = "PASS" if total_failures == 0 else "FAIL"
    print(
        f"\nbench_compare: {compared} metrics compared, "
        f"{total_failures} outside +/-{tolerance:.0%} -> {verdict}",
        file=out,
    )
    return total_failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory holding committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        required=True,
        help="directory holding freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drift (default 0.25 == +/-25%%)",
    )
    args = parser.parse_args(argv)
    failures = compare_dirs(args.baseline, args.fresh, args.tolerance)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
