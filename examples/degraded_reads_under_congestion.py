#!/usr/bin/env python3
"""Degraded reads on a congested network (the paper's §7.2 scenario).

A client reads a chunk whose server just died, so reconstruction sits on
the read's critical path.  We sweep the access-link bandwidth from 1 Gbps
down to 200 Mbps (the paper used Linux ``tc``) and watch traditional
reconstruction collapse while PPR degrades gracefully.

Run:  python examples/degraded_reads_under_congestion.py
"""

from repro import ReedSolomonCode, StorageCluster, run_degraded_read
from repro.util.units import MIB


def sweep(incast: "int | None") -> None:
    chunk_bytes = 64 * MIB
    label = "TCP-incast model ON" if incast else "fluid network model"
    print(f"--- {label} ---")
    print(f"{'code':>10} {'link':>9} {'traditional':>12} {'PPR':>9} "
          f"{'throughput gain':>16}")
    for k, m in ((6, 3), (12, 4)):
        for bandwidth in ("1Gbps", "500Mbps", "200Mbps"):
            latencies = {}
            for strategy in ("star", "ppr"):
                cluster = StorageCluster.smallsite(
                    link_bandwidth=bandwidth, incast_threshold=incast
                )
                stripe = cluster.write_stripe(
                    ReedSolomonCode(k, m), chunk_bytes
                )
                result = run_degraded_read(
                    cluster, stripe, lost_index=0, strategy=strategy
                )
                assert result.verified
                latencies[strategy] = result.duration
            gain = latencies["star"] / latencies["ppr"]
            print(f"{f'RS({k},{m})':>10} {bandwidth:>9} "
                  f"{latencies['star']:>10.2f}s {latencies['ppr']:>8.2f}s "
                  f"{gain:>15.2f}x")
    print()


def main() -> None:
    sweep(incast=None)
    sweep(incast=2)
    print("Paper reports 1.8x/2.5x at 1Gbps growing to 7x/8.25x at "
          "200Mbps.  The fluid model reproduces the direction; enabling "
          "the incast model (goodput collapse at the repair site's "
          "saturated ingress) recovers the paper's magnitudes too.")


if __name__ == "__main__":
    main()
