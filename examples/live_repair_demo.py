#!/usr/bin/env python3
"""Live mode: a real PPR repair over TCP on localhost.

Starts a 1 + 6-server cluster (one meta-server plus six chunk servers,
each a real asyncio TCP service on its own loopback port), writes an
RS(4,2) stripe, kills the chunk server hosting chunk 1, and repairs the
lost chunk with PPR's partial-result reduction tree — plan commands,
GF-combined partials and the rebuilt bytes all crossing real sockets.

The rebuilt chunk is verified byte-for-byte against the ground truth,
and the per-phase timing breakdown (same shape the simulator reports)
comes back piggybacked on the repair traffic.  The whole run is recorded
through :mod:`repro.obs`, and the demo finishes by writing the trace
next to this script and pointing at it — convert it with
``python -m repro trace convert`` and open it in https://ui.perfetto.dev
to see the distributed timeline.

Run:  python examples/live_repair_demo.py
"""

import asyncio
import pathlib

import numpy as np

from repro import obs
from repro.live import LiveCluster, LiveConfig
from repro.live import trace as live_trace
from repro.sim.metrics import PHASES

TRACE_PATH = pathlib.Path(__file__).parent / "live_repair_demo.trace.jsonl"


async def main() -> None:
    config = LiveConfig(
        heartbeat_interval=0.3,
        failure_detection_timeout=1.0,
    )
    tracer = obs.enable(clock=live_trace.now, clock_name="wall")
    print("=== Live PPR repair over TCP ===")
    async with LiveCluster(num_servers=6, config=config) as cluster:
        print(f"meta-server listening on {cluster.meta.address}")
        for server_id in cluster.server_ids:
            print(f"  {server_id} on {cluster.server(server_id).address}")

        stripe = await cluster.write_stripe("rs(4,2)", chunk_size="64MiB")
        print(f"\nwrote {stripe.spec} stripe {stripe.stripe_id}:")
        for index, (chunk_id, host) in enumerate(
            zip(stripe.chunk_ids, stripe.hosts)
        ):
            print(f"  chunk {index} -> {host}")

        lost_index = 1
        victim = stripe.hosts[lost_index]
        truth = cluster.truth_payload(stripe.chunk_ids[lost_index])
        assert truth is not None
        await cluster.kill_server(victim)
        print(f"\nkilled {victim} (host of chunk {lost_index})")

        report = await cluster.repair(
            stripe.stripe_id, lost_index=lost_index, strategy="ppr"
        )
        result = report.result

        print(
            f"\nrepaired chunk {lost_index} at {result.destination} in "
            f"{result.duration * 1e3:.1f}ms over {result.num_helpers} "
            f"helpers (attempt(s)={report.attempts})"
        )
        print("phase breakdown (busy time, share of end-to-end):")
        for name in PHASES:
            busy = result.phase_busy.get(name, 0.0)
            print(
                f"  {name:<10} {busy * 1e3:8.2f}ms "
                f"({result.phase_share(name):6.1%})"
            )
        print(f"bytes on the wire: {result.traffic.total_bytes():,.0f}")
        matches = np.array_equal(report.payload, truth)
        print(f"bytes match ground truth: {matches} "
              f"(verified={result.verified})")
        assert matches and result.verified

    spans = tracer.drain()
    obs.disable()
    obs.write_trace(
        str(TRACE_PATH),
        spans,
        clock="wall",
        metrics=obs.registry().snapshot(),
        extra_meta={"mode": "live", "demo": "live_repair_demo"},
    )
    obs.registry().reset()
    print(f"\nfull obs trace ({len(spans)} spans): {TRACE_PATH}")
    print(f"  python -m repro trace summary  {TRACE_PATH}")
    print(f"  python -m repro trace convert  {TRACE_PATH} "
          f"--out trace.chrome.json   # open in https://ui.perfetto.dev")


if __name__ == "__main__":
    asyncio.run(main())
