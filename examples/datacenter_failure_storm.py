#!/usr/bin/env python3
"""A day in the life of an erasure-coded datacenter (m-PPR at work).

Builds the paper's BIGSITE-style deployment (85 chunk servers), writes a
few hundred stripes, runs background user traffic, then crashes several
servers at once.  The Repair-Manager detects the failures via heartbeats
and schedules every reconstruction with m-PPR's weighted source and
destination selection (Algorithm 1, Eqs. 2-3), all on PPR reduction trees.

Run:  python examples/datacenter_failure_storm.py
"""

import collections

from repro import MPPRConfig, ReedSolomonCode, RepairManager, StorageCluster
from repro.workloads import UserLoadGenerator, crash_random_servers


def run(strategy: str) -> None:
    cluster = StorageCluster.bigsite(seed=42)
    rm = RepairManager(cluster, MPPRConfig(strategy=strategy))
    cluster.metaserver._repair_manager = rm
    cluster.metaserver.start_heartbeats()

    code = ReedSolomonCode(12, 4)
    for _ in range(60):
        cluster.write_stripe(code, "64MiB")

    load = UserLoadGenerator(cluster, reads_per_second=5.0, rng=1)
    load.start(duration=30.0)
    cluster.run(until=10.0)  # heartbeats + user traffic warm up

    victims = crash_random_servers(cluster, 3, rng=9)
    lost = sum(len(chunks) for chunks in victims.values())
    print(f"[{strategy}] crashed {len(victims)} servers "
          f"({', '.join(victims)}), losing {lost} chunks")

    batch = rm.drain(max_time=100_000)
    load.stop()

    destinations = collections.Counter(
        r.destination for r in batch.results
    )
    print(f"  {len(batch.results)} repairs in {batch.total_time:.1f}s "
          f"(mean {batch.mean_duration:.1f}s), all byte-verified: "
          f"{batch.all_verified}")
    print(f"  busiest repair destination handled "
          f"{max(destinations.values())} repairs "
          f"(Eq. 3 spreads the load)\n")


if __name__ == "__main__":
    for strategy in ("star", "ppr"):
        run(strategy)
    print("m-PPR schedules each repair as a PPR reduction tree AND picks "
          "sources/destinations by the weight equations — both effects "
          "show in the totals above.")
