#!/usr/bin/env python3
"""What PPR's repair speedup buys in durability (MTTDL and nines).

The paper measures repair *time*; this demo carries the result to the
quantity operators size clusters by.  It runs the years-scale Monte
Carlo engine (src/repro/reliability/) over RS(6,3) stripes under an
accelerated, bandwidth-limited regime — disk lifetimes compressed to
days and only two repair slots, so the repair queue is the bottleneck —
and compares traditional star repair against PPR on MTTDL,
P(data loss)/year, availability nines, and degraded exposure.

Because repair speed enters the Markov MTTDL roughly as (mu/lambda)^m,
PPR's ~2x repair speedup on RS(6,3) should buy *more* than 2x MTTDL.

Run:  python examples/durability_comparison.py
"""

from repro.reliability.engine import ReliabilityEngine
from repro.reliability.markov import markov_mttdl
from repro.reliability.report import accelerated_config

TRIALS = 4
STRIPES = 150


def run(scheme: str):
    config = accelerated_config(
        "rs(6,3)", scheme, n=9, num_stripes=STRIPES, trials=TRIALS,
        horizon_years=6.0,
    )
    report = ReliabilityEngine(config).run()
    mttdl, lo, hi = report.mttdl_years()
    print(f"[{scheme}] per-chunk repair "
          f"{report.per_chunk_repair_hours * 3600:.1f}s -> "
          f"MTTDL {mttdl:.3f} years [95% CI {lo:.3f} - {hi:.3f}], "
          f"P(loss)/yr {report.p_loss_per_year()[0]:.3f}, "
          f"{report.availability_nines():.2f} nines, "
          f"{report.exposure_chunk_hours_per_stripe_year():.0f} "
          f"chunk-hours degraded / stripe-year")
    return report


if __name__ == "__main__":
    print(f"Accelerated aging: disk MTTF 5 days, 256 MiB chunks, "
          f"0.5 Gbps fabric, 2 repair slots, {STRIPES} stripes x "
          f"{TRIALS} trials x 6 simulated years per scheme.\n")
    star = run("traditional")
    ppr = run("ppr")
    speedup = star.per_chunk_repair_hours / ppr.per_chunk_repair_hours
    ratio = ppr.mttdl_years()[0] / star.mttdl_years()[0]
    print(f"\nPPR repairs {speedup:.2f}x faster and lasts {ratio:.2f}x "
          f"longer to data loss — super-proportional, as the closed-form "
          f"Markov chain predicts:")
    base = markov_mttdl(9, 3, failure_rate=1e-4, repair_rate=1.0)
    fast = markov_mttdl(9, 3, failure_rate=1e-4, repair_rate=speedup)
    print(f"  markov_mttdl(RS(6,3)): a {speedup:.2f}x repair-rate boost "
          f"multiplies MTTDL by {fast / base:.1f}x")
    print("\nFull sweep over RS(6,3)-RS(12,4) incl. m-PPR: "
          "`pytest benchmarks/bench_reliability.py` or `repro reliability "
          "--scheme traditional,ppr,mppr`.")
