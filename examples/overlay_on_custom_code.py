#!/usr/bin/env python3
"""Overlay PPR on your own erasure code (§4.2 "Compatibility with other ECs").

The paper's claim: PPR works with *any* linear, associative code.  This
example defines a custom code the library has never seen — a RAID-6-style
code with one XOR parity row and one Vandermonde parity row — by giving
only its generator matrix.  Repair equations, PPR trees, and the full
simulated cluster work immediately, because everything above the
generator matrix is code-agnostic.

Run:  python examples/overlay_on_custom_code.py
"""

import numpy as np

from repro import StorageCluster, run_single_repair
from repro.codes.linear import GeneratorMatrixCode
from repro.galois.field import gf256
from repro.linalg.matrix import GFMatrix


class Raid6ishCode(GeneratorMatrixCode):
    """k data chunks + P (XOR) + Q (Vandermonde) parity — RAID-6 flavoured."""

    def __init__(self, k: int):
        rows = np.zeros((k + 2, k), dtype=np.uint8)
        rows[:k, :k] = np.eye(k, dtype=np.uint8)
        rows[k, :] = 1  # P: plain XOR of all data chunks
        for i in range(k):  # Q: weights 2^i
            rows[k + 1, i] = gf256.pow(2, i)
        self._k_param = k
        super().__init__(GFMatrix(rows))

    @property
    def name(self) -> str:
        return f"RAID6ish({self._k_param})"


def main() -> None:
    code = Raid6ishCode(8)
    print(f"custom code: {code.name}, n={code.n}, "
          f"overhead {code.storage_overhead:.2f}x")

    # The repair equation falls out of the generator matrix.
    recipe = code.repair_recipe(3, set(range(code.n)) - {3})
    coeffs = {t.helper: t.entries[0][2] for t in recipe.terms}
    print("repair equation for chunk 3:",
          " + ".join(f"{c}*C{h}" for h, c in sorted(coeffs.items())))

    # Byte-level check, then measure on the simulated cluster.
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(8, 512), dtype=np.uint8)
    encoded = code.encode(data)
    rebuilt = recipe.execute({i: encoded[i] for i in recipe.helpers})
    assert np.array_equal(rebuilt, encoded[3])
    print("recipe rebuilds the chunk byte-for-byte")

    for strategy in ("star", "ppr"):
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(code, "64MiB")
        result = run_single_repair(cluster, stripe, 3, strategy=strategy)
        print(result.summary())


if __name__ == "__main__":
    main()
