#!/usr/bin/env python3
"""Quickstart: erasure-code some data, lose a chunk, repair it with PPR.

Walks the three layers of the library:

1. pure coding math (encode / decode / repair equations),
2. repair planning (star vs PPR reduction trees, Theorem 1),
3. the simulated QFS-like cluster (measured repair times).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ReedSolomonCode,
    StorageCluster,
    build_plan,
    execute_plan,
    run_single_repair,
    theory,
)


def coding_math() -> None:
    print("=== 1. Coding math ===")
    code = ReedSolomonCode(6, 3)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, 1024), dtype=np.uint8)
    stripe = code.encode(data)
    print(f"{code.name}: {code.k} data + {code.m} parity chunks, "
          f"{code.storage_overhead:.2f}x storage overhead")

    # Lose chunk 2; build its repair equation from the 8 survivors.
    available = {i: stripe[i] for i in range(9) if i != 2}
    recipe = code.repair_recipe(2, available.keys())
    coeffs = {t.helper: t.entries[0][2] for t in recipe.terms}
    print(f"repair equation: C2 = "
          + " + ".join(f"{c}*C{h}" for h, c in sorted(coeffs.items())))
    rebuilt = recipe.execute(available)
    assert np.array_equal(rebuilt, stripe[2])
    print("rebuilt chunk 2 byte-for-byte\n")


def repair_planning() -> None:
    print("=== 2. Repair planning (Theorem 1) ===")
    code = ReedSolomonCode(6, 3)
    recipe = code.repair_recipe(0, range(1, 9))
    chunk, bw = 64 * 2**20, 125e6  # 64 MiB over 1 Gbps

    for strategy in ("star", "ppr"):
        plan = build_plan(strategy, recipe)
        t = plan.estimate_transfer_time(chunk, bw)
        print(f"{strategy:>5}: {plan.num_steps} step(s), "
              f"est. network transfer {t:.2f}s, "
              f"max ingress {plan.max_ingress_bytes(1.0):.0f} chunks")
    print(f"Theorem 1: k={code.k} -> ceil(log2(k+1)) = "
          f"{theory.ppr_timesteps(code.k)} timesteps, "
          f"{theory.transfer_time_reduction(code.k):.0%} reduction")

    # Distributed execution is bit-exact vs centralized decode.
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(6, 256), dtype=np.uint8)
    stripe = code.encode(data)
    available = {i: stripe[i] for i in range(1, 9)}
    assert np.array_equal(
        execute_plan(build_plan("ppr", recipe), available), stripe[0]
    )
    print("PPR tree execution == centralized decode\n")


def simulated_cluster() -> None:
    print("=== 3. Simulated cluster (SMALLSITE: 16 hosts, 1 Gbps) ===")
    for strategy in ("star", "staggered", "ppr"):
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(ReedSolomonCode(6, 3), "64MiB")
        result = run_single_repair(
            cluster, stripe, lost_index=0, strategy=strategy
        )
        print(result.summary())


if __name__ == "__main__":
    coding_math()
    repair_planning()
    simulated_cluster()
