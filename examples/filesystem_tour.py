#!/usr/bin/env python3
"""Tour of the file layer: files on stripes, crashes, pipelined repair.

Shows the full stack the way an operator would see it: write files into
the QFS-like namespace, crash servers, watch reads degrade (but return
correct bytes), let m-PPR heal the cluster, and finish with the
repair-pipelining extension.

Run:  python examples/filesystem_tour.py
"""

import numpy as np

from repro import (
    FileSystem,
    LocalReconstructionCode,
    MPPRConfig,
    ReedSolomonCode,
    RepairManager,
    StorageCluster,
    run_single_repair,
)


def read_sync(cluster, fs, path, strategy="ppr"):
    results = []
    fs.read_file(path, on_done=results.append, strategy=strategy)
    while not results and cluster.sim.step():
        pass
    return results[0]


def main() -> None:
    cluster = StorageCluster.smallsite()
    rm = RepairManager(cluster, MPPRConfig(strategy="ppr"))
    cluster.metaserver._repair_manager = rm
    fs = FileSystem(cluster)
    rng = np.random.default_rng(7)

    print("=== writing files ===")
    files = {
        "/logs/app.log": (rng.integers(0, 256, 200_000, dtype=np.uint8)
                          .tobytes(), ReedSolomonCode(6, 3)),
        "/media/video.mp4": (rng.integers(0, 256, 500_000, dtype=np.uint8)
                             .tobytes(), LocalReconstructionCode(12, 2, 2)),
    }
    for path, (data, code) in files.items():
        meta = fs.write_file(path, data, code, chunk_size="16MiB")
        print(f"{path}: {meta.size} bytes, {code.name}, "
              f"{meta.num_stripes} stripe(s)")

    print("\n=== healthy read ===")
    result = read_sync(cluster, fs, "/logs/app.log")
    assert result.data == files["/logs/app.log"][0]
    print(f"read /logs/app.log in {result.latency * 1e3:.0f}ms, "
          f"{result.degraded_chunks} degraded chunks")

    print("\n=== crash two servers, read again (degraded) ===")
    victims = cluster.server_ids[:2]
    for victim in victims:
        cluster.kill_server(victim)
    print(f"killed {', '.join(victims)}")
    result = read_sync(cluster, fs, "/media/video.mp4")
    assert result.data == files["/media/video.mp4"][0]
    print(f"read /media/video.mp4 in {result.latency * 1e3:.0f}ms with "
          f"{result.degraded_chunks} chunk(s) reconstructed on the fly — "
          f"bytes still exact")

    print("\n=== m-PPR heals the cluster in the background ===")
    batch = rm.drain(max_time=10_000)
    print(f"{len(batch.results)} chunks re-hosted in {batch.total_time:.1f}s "
          f"(all byte-verified: {batch.all_verified})")
    result = read_sync(cluster, fs, "/media/video.mp4")
    print(f"post-heal read: {result.degraded_chunks} degraded chunks")

    print("\n=== bonus: repair pipelining (the follow-on PPR seeded) ===")
    for strategy, slices in (("ppr", 1), ("chain", 32)):
        c = StorageCluster.smallsite()
        stripe = c.write_stripe(ReedSolomonCode(12, 4), "64MiB")
        r = run_single_repair(c, stripe, 0, strategy=strategy,
                              num_slices=slices)
        print(f"{strategy:>5} x{slices:<3} repair: {r.duration:.2f}s "
              f"(network {r.phase_busy['network']:.2f}s)")


if __name__ == "__main__":
    main()
