#!/usr/bin/env python3
"""The three durability levers, pitted against each other in one table.

PPR's lever is repair *scheduling* (star -> ppr); the community's other
two levers are repair-traffic-reducing *codes* (MSR regenerating codes
move gamma(d) = d/(d-k+1) chunks instead of k) and loss-correlation-
reducing *placement* (copysets confine stripes to a few fixed groups so
almost no failure combination covers one).  This demo runs a reduced
scheme x code x placement matrix (src/repro/redundancy/) through the
years-scale Monte Carlo engine and prints the per-cell comparison —
plus the Markov-validation anchor on the rs x random baseline cell.

Run:  python examples/matrix_comparison.py
"""

from repro.redundancy import MatrixConfig, compare_axes, run_matrix

CONFIG = MatrixConfig(
    schemes=("star", "ppr"),
    codes=("rs(6,3)", "msr(6,3)"),
    placements=("random", "copyset"),
    num_stripes=120,
    trials=2,
    horizon_years=3.0,
    validation_trials=250,
)

if __name__ == "__main__":
    print("Redundancy matrix: 2 schemes x 2 codes x 2 placements under "
          "accelerated aging\n(disk MTTF 5 days, 0.5 Gbps fabric, 2 "
          "repair slots; every cell independently seeded).\n")
    result = run_matrix(CONFIG)
    print(result.to_experiment().report)

    # What each lever buys, holding the others at their sweep-best:
    print("\nPer-axis winners (mean availability nines across the "
          "other two axes):")
    for axis, (value, nines) in sorted(compare_axes(result).items()):
        print(f"  best {axis:<10} {value:<10} ({nines:.2f} nines)")

    rs = result.cell("ppr", "rs(6,3)", "random")
    msr = result.cell("ppr", "msr(6,3)", "random")
    traffic_ratio = (
        rs.report.repair_traffic_bytes_per_stripe_year()
        / msr.report.repair_traffic_bytes_per_stripe_year()
    )
    print(f"\nMSR(6,3) moves {traffic_ratio:.2f}x less repair traffic "
          f"than RS(6,3) under PPR — the cut-set bound at work.")

    def events(placement):
        return sum(c.report.total_loss_events for c in result.cells
                   if c.placement == placement)

    print(f"Copyset placement: {events('copyset')} loss events across "
          f"its cells vs {events('random')} under random placement — "
          f"fewer failure combinations cover a stripe.")

    validation = result.validation
    print(f"\nMarkov anchor ({validation.code}, random placement): "
          f"closed form {validation.markov_mttdl_hours:.1f}h "
          f"{'inside' if validation.inside_ci else 'OUTSIDE'} the "
          f"simulated 95% CI [{validation.ci_low_hours:.1f}, "
          f"{validation.ci_high_hours:.1f}]h.")

    print("\nFull 4x4x3 sweep: `python -m repro matrix` "
          "(or `pytest benchmarks/bench_matrix.py`).")
