"""Table 2: critical-path op counts and modeled compute times."""

import math

from repro.analysis import experiments


def test_table2_critical_path(benchmark, save_report):
    result = benchmark(experiments.table2_critical_path)
    save_report(result)
    for row in result.rows:
        k = row["k"]
        assert row["trad_mul"] == k and row["trad_xor"] == k
        assert row["ppr_mul"] == 1
        assert row["ppr_xor"] == math.ceil(math.log2(k + 1))
        assert row["ppr_time"] < row["trad_time"]
    # Speedup grows with k.
    speedups = [r["trad_time"] / r["ppr_time"] for r in result.rows]
    assert speedups == sorted(speedups)
