"""Ablation: m-PPR's weighted server selection vs weight-blind."""

from repro.analysis import experiments


def test_ablation_mppr_weights(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.ablation_mppr_weights(num_stripes=30),
        rounds=1, iterations=1,
    )
    save_report(result)
    by = {row["variant"]: row["total_s"] for row in result.rows}
    # Weighted selection must not be slower; it usually wins clearly
    # because destinations (Eq. 3) stop piling onto one server.
    assert by["weighted"] <= by["degenerate"] * 1.05
