"""Fig 1: phase shares of a traditional degraded read."""

from repro.analysis import experiments

#: Workload parameters stamped into every BENCH_fig1_*.json record (the
#: per-row code k/m rides in each record's own config already).
BENCH_CONFIG = {
    "chunk_size": "64MiB",
    "topology": "smallsite-single-switch",
    "servers": 16,
    "strategy": "star",
}


def test_fig1_phase_breakdown(benchmark, save_report):
    result = benchmark.pedantic(
        experiments.fig1_phase_breakdown, rounds=1, iterations=1
    )
    save_report(result)
    for row in result.rows:
        # Network transfer dominates every configuration (paper: up to 94%).
        assert row["network"] > row["disk_read"]
        assert row["network"] > row["compute"]
        assert row["network"] > 0.5
        # Disk read is a visible but secondary cost (paper: up to 17.8%).
        assert 0.0 < row["disk_read"] < 0.3
    # Network share grows with k (more chunks funnel into the client).
    shares = [row["network"] for row in result.rows]
    assert shares == sorted(shares)
