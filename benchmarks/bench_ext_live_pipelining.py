"""Extension: sliced repair pipelining over the live TCP data path.

The wire-v2 streamed repair (`STREAM_BEGIN`/`DATA`/`END` frames,
per-slice GF aggregation) replayed on real sockets with the repair rate
token-bucket paced to 1 MiB/s, so transfer time dominates localhost
overhead and the C/B convergence of repair pipelining is visible in
wall-clock seconds.  See docs/PIPELINING.md for the math and the
matching simulator sweep (bench_ext_pipelining.py).
"""

from repro.analysis import extensions

BENCH_CONFIG = {
    "spec": "rs(4,2)",
    "payload_bytes": 262144,
    "rate_limit_bytes_per_s": 1048576,
    "slice_counts": [1, 8, 64],
}


def test_ext_live_pipelining(benchmark, save_report):
    result = benchmark.pedantic(
        extensions.ext_live_pipelining, rounds=1, iterations=1
    )
    save_report(result)
    by = {(r["strategy"], r["slices"]): r for r in result.rows}

    # Slicing makes the live chain monotonically faster...
    chain = sorted(
        (r for r in result.rows if r["strategy"] == "chain"),
        key=lambda r: r["slices"],
    )
    times = [r["duration_s"] for r in chain]
    assert times == sorted(times, reverse=True)

    # ...and a well-sliced chain beats the unsliced PPR tree over real
    # sockets, just as in the simulator (bench_ext_pipelining.py).
    assert by[("chain", 64)]["duration_s"] < by[("ppr", 1)]["duration_s"]

    # The paced chain tracks the analytic (D+S-1)·C/(S·B) prediction.
    # (PPR is excluded: per-sender pacing lets its tree steps overlap,
    # so the serial-steps closed form is only an upper bound there.)
    for row in chain:
        assert row["duration_s"] >= row["predicted_s"] * 0.75
        assert row["duration_s"] <= row["predicted_s"] * 1.25

    # Convergence: at S=64 the chain sits within 25% of a single C/B —
    # 4x faster than its own unsliced serial transfer (D·C/B = 1s).
    chunk_over_bw = (
        BENCH_CONFIG["payload_bytes"]
        / BENCH_CONFIG["rate_limit_bytes_per_s"]
    )
    assert by[("chain", 64)]["duration_s"] < chunk_over_bw * 1.25
