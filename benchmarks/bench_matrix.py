"""Redundancy matrix: scheme × code × placement, the cross-lever claims.

The acceptance claims of the redundancy subsystem (ISSUE 9): the full
4 scheme × 4 code × 3 placement sweep completes; the rs×random baseline
cell brackets the closed-form Markov MTTDL; MSR cells move strictly
less repair traffic than RS at equal (n, k) under every scheme and
placement; copyset placement shows a lower loss-*event* rate than
random placement (fewer failure combinations cover a stripe).

All simulated metrics are seeded-deterministic, so the emitted
``results/BENCH_matrix.json`` doubles as a perf-gate baseline
(``tools/bench_compare.py`` ±25%).  Like ``bench_reliability.py`` this
module deliberately skips the pytest-benchmark timing fixture: a
minute-long Monte Carlo sweep's wall clock swings far more than ±25%
across machines.
"""

from repro.redundancy import MatrixConfig, run_matrix

#: Workload parameters stamped into every BENCH_matrix.json record.
BENCH_CONFIG = {
    "regime": "accelerated-bandwidth-limited",
    "disk_lifetime": "exp:5d",
    "chunk_size": "256MiB",
    "net_bandwidth": "0.5Gbps",
    "repair_slots": 2,
    "num_stripes": 200,
    "trials": 2,
    "horizon_years": 3.0,
    "seed": 2016,
}

#: The full cross-product at benchmark sizing (48 cells, ~1s each).
MATRIX_CONFIG = MatrixConfig(
    num_stripes=200,
    trials=2,
    horizon_years=3.0,
    validation_trials=300,
)


def test_redundancy_matrix(save_report):
    result = run_matrix(MATRIX_CONFIG)
    save_report(result.to_experiment())

    # The sweep covers the full grid and every cell is meaningful.
    config = MATRIX_CONFIG
    assert len(result.cells) == (
        len(config.schemes) * len(config.codes) * len(config.placements)
    ) == 48
    for cell in result.cells:
        mttdl, _, _ = cell.report.mttdl_years()
        assert mttdl > 0, cell
        assert cell.report.repair_traffic_bytes_per_stripe_year() > 0, cell

    # Markov anchor: the engine, configured as the birth-death chain,
    # brackets the closed-form MTTDL of the rs(6,3) baseline.
    assert result.validation is not None
    assert result.validation.inside_ci, result.validation

    # MSR moves strictly less repair traffic than RS at equal (n, k)
    # — gamma(d) = d/(d-k+1) < k — under every scheme and placement.
    for scheme in config.schemes:
        for placement in config.placements:
            rs = result.cell(scheme, "rs(6,3)", placement)
            msr = result.cell(scheme, "msr(6,3)", placement)
            assert (
                msr.report.repair_traffic_bytes_per_stripe_year()
                < rs.report.repair_traffic_bytes_per_stripe_year()
            ), (scheme, placement)

    # Copyset placement shrinks the set of failure combinations that
    # can lose data: aggregated over the sweep, strictly fewer loss
    # *events* than random placement at equal scatter width.
    def loss_events(placement):
        return sum(
            c.report.total_loss_events
            for c in result.cells
            if c.placement == placement
        )

    assert loss_events("copyset") < loss_events("random")
