"""Table 1: potential network-transfer and per-server BW reductions."""

from repro.analysis import experiments, paper_reported

#: Workload parameters stamped into every BENCH_table1_theory.json record.
BENCH_CONFIG = {
    "model": "closed-form",
    "chunks_lost": 1,
}


def test_table1(benchmark, save_report):
    result = benchmark(experiments.table1)
    save_report(result)
    for row in result.rows:
        key = (row["k"], row["m"])
        assert abs(
            row["network_ours"] - paper_reported.TABLE1[key]["network"]
        ) < 0.005
        assert abs(
            row["bw_ours"] - paper_reported.TABLE1[key]["per_server_bw"]
        ) < 0.005
