"""Fig 7c: degraded-read latency, traditional vs PPR."""

from repro.analysis import experiments


def test_fig7c_degraded_read(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.fig7c_degraded_read(runs=1),
        rounds=1, iterations=1,
    )
    save_report(result)
    by_k = {}
    for row in result.rows:
        assert row["ppr_s"] < row["star_s"]
        by_k.setdefault(row["k"], []).append(row["reduction"])
    # Reduction more prominent for higher k (paper's observation).
    means = {k: sum(v) / len(v) for k, v in by_k.items()}
    ks = sorted(means)
    assert [means[k] for k in ks] == sorted(means.values())
    # And larger chunks benefit at least as much as small ones.
    for k in ks:
        small = [r for r in result.rows if r["k"] == k and r["chunk"] == "8MiB"]
        large = [r for r in result.rows if r["k"] == k and r["chunk"] == "64MiB"]
        assert large[0]["reduction"] >= small[0]["reduction"] - 0.02
