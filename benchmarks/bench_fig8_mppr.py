"""Fig 8: m-PPR vs traditional scheduling of simultaneous repairs."""

from repro.analysis import experiments


def test_fig8_mppr(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.fig8_mppr(failure_counts=(1, 2, 3)),
        rounds=1, iterations=1,
    )
    save_report(result)
    for row in result.rows:
        # m-PPR beats traditional batch repair at every point measured.
        assert row["ppr_s"] < row["star_s"]
        assert 0.10 < row["reduction"] < 0.60
    # The benefit shrinks with more simultaneous failures — the paper's
    # own observation (repairs already spread traffic; m-PPR has less
    # flexibility).  With a fluid network model the decline is steeper
    # than on the paper's testbed, where TCP incast keeps penalizing the
    # traditional k-into-1 funnel at every scale (see EXPERIMENTS.md).
    reductions = [r["reduction"] for r in result.rows]
    assert reductions == sorted(reductions, reverse=True)
