"""Fig 2/4: per-server transfer patterns, traditional vs PPR."""

import math

from repro.analysis import experiments


def test_fig4_link_traffic(benchmark, save_report):
    result = benchmark.pedantic(
        experiments.fig4_link_traffic, rounds=1, iterations=1
    )
    save_report(result)
    k = 6
    star = [r for r in result.rows if r["strategy"] == "star"]
    ppr = [r for r in result.rows if r["strategy"] == "ppr"]
    # Traditional: one server ingests k chunks, everyone else ships 1.
    assert max(r["ingress_chunks"] for r in star) == k
    # PPR: no server moves more than ceil(log2(k+1)) chunks either way.
    cap = math.ceil(math.log2(k + 1))
    for row in ppr:
        assert row["ingress_chunks"] + row["egress_chunks"] <= cap + 1e-9
