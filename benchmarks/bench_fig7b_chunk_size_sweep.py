"""Fig 7b: traditional vs PPR repair time as chunk size grows, RS(12,4)."""

from repro.analysis import experiments


def test_fig7b_chunk_size_sweep(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.fig7b_chunk_size_sweep(runs=1),
        rounds=1, iterations=1,
    )
    save_report(result)
    rows = result.rows
    # Absolute times grow with chunk size; PPR always wins.
    stars = [r["star_s"] for r in rows]
    pprs = [r["ppr_s"] for r in rows]
    assert stars == sorted(stars) and pprs == sorted(pprs)
    for row in rows:
        assert row["ppr_s"] < row["star_s"]
    # The benefit does not shrink with chunk size (paper: it grows).
    assert rows[-1]["reduction"] >= rows[0]["reduction"] - 0.01
