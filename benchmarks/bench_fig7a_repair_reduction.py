"""Fig 7a: repair-time reduction across codes and chunk sizes."""

from repro.analysis import experiments, paper_reported


def test_fig7a_repair_reduction(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.fig7a_repair_reduction(runs=1),
        rounds=1, iterations=1,
    )
    save_report(result)
    reductions = {}
    for row in result.rows:
        assert 0.2 < row["reduction"] < 0.8
        reductions.setdefault(row["k"], []).append(row["reduction"])
    # Reduction grows with k (paper: highest for RS(12,4)).
    means = {k: sum(v) / len(v) for k, v in reductions.items()}
    ks = sorted(means)
    assert [means[k] for k in ks] == sorted(means[k] for k in ks)
    # Peak is in the neighbourhood of the paper's 59%.
    peak = max(r["reduction"] for r in result.rows)
    assert abs(peak - paper_reported.FIG7A_MAX_REDUCTION) < 0.1
