"""Extension: incast ablation — Fig 7d's magnitudes under goodput collapse."""

from repro.analysis import extensions


def test_ext_incast(benchmark, save_report):
    result = benchmark.pedantic(extensions.ext_incast, rounds=1, iterations=1)
    save_report(result)
    fluid = {(r["k"], r["m"]): r for r in result.rows if r["model"] == "fluid"}
    incast = {(r["k"], r["m"]): r for r in result.rows if r["model"] == "incast"}
    for key in fluid:
        # Incast punishes the traditional k-into-1 funnel hard...
        assert incast[key]["star_mbps"] < fluid[key]["star_mbps"] / 2
        # ...while PPR's per-step fan-in stays under the threshold.
        assert incast[key]["ppr_mbps"] > incast[key]["star_mbps"] * 3
        # Gains land in the paper's multi-x regime.
        assert incast[key]["gain"] > 4.0
    # Traditional throughput lands near the paper's ~1 MB/s collapse.
    assert incast[(6, 3)]["star_mbps"] < 3.0
