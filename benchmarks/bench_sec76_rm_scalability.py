"""§7.6: Repair-Manager plan-creation throughput."""

from repro.analysis import experiments
from repro.codes import ReedSolomonCode
from repro.repair.plan import build_plan


def test_sec76_rm_scalability(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.sec76_rm_scalability(repeats=20),
        rounds=1, iterations=1,
    )
    save_report(result)
    by_k = {row["k"]: row for row in result.rows}
    # Planning RS(12,4) costs more than RS(6,3) (paper: 8.7ms vs 5.3ms).
    assert by_k[12]["plan_s"] > by_k[6]["plan_s"]
    # A single RM instance comfortably exceeds the paper's 115 repairs/sec.
    for row in result.rows:
        assert row["repairs_per_sec"] > 115


def test_plan_creation_rs63(benchmark):
    code = ReedSolomonCode(6, 3)
    alive = set(range(1, 9))
    benchmark(lambda: build_plan("ppr", code.repair_recipe(0, alive)))


def test_plan_creation_rs124(benchmark):
    code = ReedSolomonCode(12, 4)
    alive = set(range(1, 16))
    benchmark(lambda: build_plan("ppr", code.repair_recipe(0, alive)))
