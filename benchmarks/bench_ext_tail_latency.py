"""Extension: degraded-read latency distribution under background load."""

from repro.analysis import extensions


def test_ext_tail_latency(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: extensions.ext_degraded_tail_latency(num_reads=15),
        rounds=1, iterations=1,
    )
    save_report(result)
    by = {r["strategy"]: r for r in result.rows}
    # PPR improves the mean AND the tail.
    assert by["ppr"]["mean"] < by["star"]["mean"]
    assert by["ppr"]["p95"] < by["star"]["p95"]
    assert by["ppr"]["max"] < by["star"]["max"]
