"""Microbenchmarks: the GF(2^8) kernels underlying everything."""

import numpy as np
import pytest

from repro.galois.vector import addmul, scale, xor_into
from repro.linalg.builders import systematic_vandermonde_generator
from repro.util.units import MIB

SIZE = 4 * MIB

#: Workload parameters stamped into every BENCH_gf_kernels.json record.
BENCH_CONFIG = {
    "field": "GF(2^8)",
    "buffer_bytes": SIZE,
    "code": "rs(12,4)",
}


@pytest.fixture(scope="module")
def buffers():
    rng = np.random.default_rng(0)
    return (
        rng.integers(0, 256, size=SIZE, dtype=np.uint8),
        rng.integers(0, 256, size=SIZE, dtype=np.uint8),
    )


def test_scale_throughput(benchmark, buffers):
    src, _ = buffers
    benchmark(scale, 7, src)


def test_xor_throughput(benchmark, buffers):
    src, other = buffers
    dst = src.copy()
    benchmark(xor_into, dst, other)


def test_addmul_throughput(benchmark, buffers):
    src, other = buffers
    dst = src.copy()
    benchmark(addmul, dst, 9, other)


def test_matrix_inversion_12x12(benchmark):
    gen = systematic_vandermonde_generator(12, 4)
    rows = list(range(1, 13))  # decode-style submatrix
    sub = gen.take_rows(rows)
    benchmark(sub.inverse)


def test_decoding_coefficients_rs124(benchmark):
    from repro.codes import ReedSolomonCode

    code = ReedSolomonCode(12, 4)
    alive = set(range(1, 16))
    benchmark(code.repair_recipe, 0, alive)
