"""§4.3: reduced memory footprint, measured on the simulated cluster."""

import math

import pytest

from repro.codes import ReedSolomonCode
from repro.core.single_repair import run_single_repair
from repro.fs.cluster import StorageCluster
from repro.repair import theory
from repro.util.units import MIB


def measure(k, m, strategy):
    cluster = StorageCluster.smallsite()
    stripe = cluster.write_stripe(ReedSolomonCode(k, m), 64 * MIB)
    return run_single_repair(cluster, stripe, 0, strategy=strategy)


def test_sec43_memory_footprint(benchmark, save_report):
    from repro.analysis.render import Table

    def run():
        table = Table(
            ["code", "traditional peak (theory k*C)", "PPR peak",
             "PPR bound ceil(log2(k+1))*C"],
            title="Sec 4.3: peak reconstruction memory per node (chunks)",
        )
        rows = []
        for k, m in ((6, 3), (8, 3), (12, 4)):
            star = measure(k, m, "star")
            ppr = measure(k, m, "ppr")
            C = star.chunk_size
            rows.append(
                {"k": k,
                 "star_chunks": star.peak_buffer_bytes / C,
                 "ppr_chunks": ppr.peak_buffer_bytes / C,
                 "bound": math.ceil(math.log2(k + 1))}
            )
            table.add_row(
                f"RS({k},{m})",
                f"{star.peak_buffer_bytes / C:.1f}",
                f"{ppr.peak_buffer_bytes / C:.1f}",
                rows[-1]["bound"],
            )

        class Result:
            experiment_id = "sec43_memory"
            report = table.render()

        Result.rows = rows
        return Result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(result)
    for row in result.rows:
        # Traditional buffers ~k chunks at the repair site.
        assert row["star_chunks"] == pytest.approx(row["k"], abs=0.01)
        # PPR stays within the paper's ceil(log2(k+1)) bound and well
        # below traditional.
        assert row["ppr_chunks"] <= row["bound"] + 0.01
        assert row["ppr_chunks"] <= row["star_chunks"] / 2


def test_sliced_repair_shrinks_buffers(benchmark):
    """Pipelining bonus: slices bound memory by fractions of a chunk."""

    def run():
        cluster = StorageCluster.smallsite()
        stripe = cluster.write_stripe(ReedSolomonCode(12, 4), 64 * MIB)
        return run_single_repair(
            cluster, stripe, 0, strategy="chain", num_slices=16
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # The destination must hold the chunk it is rebuilding (~1 C), but no
    # chain node buffers more than that — far below PPR's log2-many
    # chunks, let alone traditional's k.
    assert result.peak_buffer_bytes <= result.chunk_size * 1.2
