"""Shared helpers for the benchmark suite.

Every benchmark runs the corresponding experiment driver from
:mod:`repro.analysis.experiments` under pytest-benchmark timing, asserts
the paper's qualitative claims (who wins, roughly by how much, trend
directions), and writes the rendered paper-vs-measured report to
``results/<experiment id>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Persist an ExperimentResult's report and echo it to stdout."""

    def _save(result) -> None:
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.report + "\n", encoding="utf-8")
        print()
        print(result.report)

    return _save
