"""Shared helpers for the benchmark suite.

Every benchmark runs the corresponding experiment driver from
:mod:`repro.analysis.experiments` under pytest-benchmark timing, asserts
the paper's qualitative claims (who wins, roughly by how much, trend
directions), and writes the rendered paper-vs-measured report to
``results/<experiment id>.txt``.

Alongside the text reports, every ``bench_<name>.py`` module also emits a
machine-readable ``results/BENCH_<name>.json``: one record per metric with
``metric`` / ``value`` / ``units`` / ``config`` keys.  Two collectors feed
it — numeric columns of each :class:`ExperimentResult` saved through
``save_report``, and pytest-benchmark timing stats captured by an autouse
fixture (guarded, so ``--benchmark-disable`` runs still work).
"""

from __future__ import annotations

import collections
import json
import os
import pathlib
from typing import Dict, List

import pytest

#: Default artifact directory; REPRO_BENCH_RESULTS_DIR overrides it so
#: tooling (e.g. tools/bench_compare.py) can collect fresh results
#: without touching the committed baselines in results/.
_DEFAULT_RESULTS_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "results"
)


def _results_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    return pathlib.Path(override) if override else _DEFAULT_RESULTS_DIR


RESULTS_DIR = _results_dir()

#: Set REPRO_BENCH_TRACE=1 to also write results/BENCH_<slug>.trace.json
#: (Chrome trace format) for every benchmark module that records spans.
_TRACE_ENV = "REPRO_BENCH_TRACE"

#: module slug -> metric records accumulated over the session
_COLLECTED: "Dict[str, List[Dict[str, object]]]" = collections.defaultdict(list)

#: column-name suffix -> units, for ExperimentResult rows
_UNIT_SUFFIXES = (
    ("_bytes", "bytes"),
    ("_mib", "MiB"),
    ("_gib", "GiB"),
    ("_ms", "ms"),
    ("_us", "us"),
    ("_s", "s"),
    ("_seconds", "s"),
    ("_pct", "percent"),
    ("_percent", "percent"),
    ("_ratio", "ratio"),
    ("_x", "ratio"),
)


def _module_slug(node) -> str:
    stem = pathlib.Path(str(node.fspath)).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _units_for(column: str) -> str:
    lowered = column.lower()
    for suffix, units in _UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return units
    return "value"


def _module_config(node) -> "Dict[str, object]":
    """A module's ``BENCH_CONFIG`` dict (workload parameters: code k/m,
    chunk size, topology...), stamped into every metric record so a
    baseline comparison knows *what* was measured, not just how fast."""
    module = getattr(node, "module", None)
    config = getattr(module, "BENCH_CONFIG", None)
    return dict(config) if isinstance(config, dict) else {}


def _record(slug: str, metric: str, value: float, units: str, config) -> None:
    _COLLECTED[slug].append(
        {
            "metric": metric,
            "value": float(value),
            "units": units,
            "config": {key: str(val) for key, val in sorted(config.items())},
        }
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir, request):
    """Persist an ExperimentResult's report and echo it to stdout."""

    slug = _module_slug(request.node)
    base_config = _module_config(request.node)

    def _save(result) -> None:
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.report + "\n", encoding="utf-8")
        print()
        print(result.report)
        for row in result.rows:
            numeric = {
                key: val
                for key, val in row.items()
                if isinstance(val, (int, float)) and not isinstance(val, bool)
            }
            config = dict(base_config)
            config.update(
                {k: v for k, v in row.items() if k not in numeric}
            )
            config["experiment_id"] = result.experiment_id
            for key, val in numeric.items():
                _record(
                    slug,
                    f"{result.experiment_id}.{key}",
                    val,
                    _units_for(key),
                    config,
                )

    return _save


#: module slug -> obs spans accumulated over the session (trace opt-in)
_TRACE_SPANS: "Dict[str, list]" = collections.defaultdict(list)


@pytest.fixture(autouse=True)
def _collect_trace_spans(request):
    """Opt-in (REPRO_BENCH_TRACE=1) span capture around each benchmark.

    Tracing is enabled per test and drained after it, so the default
    benchmark run — including the obs-overhead acceptance runs — never
    pays a single instrumentation branch beyond the None-check.
    """
    if not os.environ.get(_TRACE_ENV):
        yield
        return
    from repro import obs

    tracer = obs.enable(clock_name="monotonic")
    try:
        yield
    finally:
        obs.disable()
    _TRACE_SPANS[_module_slug(request.node)].extend(tracer.drain())


@pytest.fixture(autouse=True)
def _collect_benchmark_stats(request):
    """After each timed test, fold pytest-benchmark stats into the JSON."""

    fixture = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    stats = getattr(getattr(fixture, "stats", None), "stats", None)
    if stats is None:  # no benchmark fixture, disabled, or never called
        return
    config = _module_config(request.node)
    callspec = getattr(request.node, "callspec", None)
    if callspec is not None:
        config.update(
            {key: str(val) for key, val in callspec.params.items()}
        )
    slug = _module_slug(request.node)
    test = request.node.name
    for field in ("min", "median", "mean", "max", "stddev"):
        value = getattr(stats, field, None)
        if value is not None:
            _record(slug, f"{test}.{field}", value, "s", config)
    rounds = getattr(stats, "rounds", None)
    if rounds is not None:
        _record(slug, f"{test}.rounds", rounds, "count", config)


def pytest_sessionfinish(session, exitstatus):
    if not _COLLECTED and not _TRACE_SPANS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    for slug, metrics in sorted(_COLLECTED.items()):
        payload = {"benchmark": slug, "metrics": metrics}
        path = RESULTS_DIR / f"BENCH_{slug}.json"
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    for slug, spans in sorted(_TRACE_SPANS.items()):
        if not spans:
            continue
        from repro import obs

        path = RESULTS_DIR / f"BENCH_{slug}.trace.json"
        path.write_text(
            json.dumps(obs.chrome_trace(spans), indent=1, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
