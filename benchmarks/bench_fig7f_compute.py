"""Fig 7f: reconstruction computation time with real GF kernels."""

import math

import numpy as np
import pytest

from repro.analysis import experiments
from repro.galois.vector import addmul, scale
from repro.util.units import MIB


def test_fig7f_compute(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.fig7f_compute(buffer_bytes=2 * MIB),
        rounds=1, iterations=1,
    )
    save_report(result)
    for row in result.rows:
        assert row["critical_s"] < row["serial_s"]
    # Serial decode time grows with k; the PPR critical path barely moves.
    serials = [r["serial_s"] for r in result.rows]
    assert serials == sorted(serials)


@pytest.mark.parametrize("k", [6, 12])
def test_serial_decode_kernel(benchmark, k):
    """Traditional repair-site computation: k fused multiply-XORs."""
    rng = np.random.default_rng(0)
    bufs = [rng.integers(0, 256, size=MIB, dtype=np.uint8) for _ in range(k)]

    def decode():
        acc = np.zeros(MIB, dtype=np.uint8)
        for i, buf in enumerate(bufs):
            addmul(acc, (i % 254) + 2, buf)
        return acc

    benchmark(decode)


@pytest.mark.parametrize("k", [6, 12])
def test_ppr_critical_path_kernel(benchmark, k):
    """PPR per-node computation: one multiply + ceil(log2(k+1)) XORs."""
    rng = np.random.default_rng(0)
    buf = rng.integers(0, 256, size=MIB, dtype=np.uint8)
    other = rng.integers(0, 256, size=MIB, dtype=np.uint8)
    steps = math.ceil(math.log2(k + 1))

    def critical_path():
        partial = scale(7, buf)
        for _ in range(steps):
            np.bitwise_xor(partial, other, out=partial)
        return partial

    benchmark(critical_path)
