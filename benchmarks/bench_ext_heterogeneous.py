"""Extension: capacity-aware aggregator placement (§4.2)."""

from repro.analysis import extensions


def test_ext_heterogeneous(benchmark, save_report):
    result = benchmark.pedantic(
        extensions.ext_heterogeneous, rounds=1, iterations=1
    )
    save_report(result)
    by = {r["capacity_aware"]: r for r in result.rows}
    # Capacity-aware placement wins clearly on a heterogeneous cluster.
    assert by[True]["mean_s"] < by[False]["mean_s"]
    assert by[True]["gain"] > 0.10
