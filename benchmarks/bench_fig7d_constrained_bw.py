"""Fig 7d: degraded-read throughput under constrained bandwidth."""

from repro.analysis import experiments


def test_fig7d_constrained_bandwidth(benchmark, save_report):
    result = benchmark.pedantic(
        experiments.fig7d_constrained_bandwidth, rounds=1, iterations=1
    )
    save_report(result)
    for row in result.rows:
        assert row["ppr_mbps"] > row["star_mbps"]
    # Gains at 1 Gbps in the paper's neighbourhood (1.8x / 2.5x).
    g63 = [r for r in result.rows if r["k"] == 6 and r["bandwidth"] == "1Gbps"]
    g124 = [r for r in result.rows if r["k"] == 12 and r["bandwidth"] == "1Gbps"]
    assert 1.4 < g63[0]["gain"] < 2.5
    assert 2.0 < g124[0]["gain"] < 3.5
    # Gain does not shrink as bandwidth tightens (paper: it grows a lot;
    # fluid-flow modeling reproduces the direction, not the magnitude).
    for k in (6, 12):
        series = [r["gain"] for r in result.rows if r["k"] == k]
        assert series == sorted(series)
    # Throughput itself collapses as links shrink.
    for k in (6, 12):
        tputs = [r["star_mbps"] for r in result.rows if r["k"] == k]
        assert tputs == sorted(tputs, reverse=True)
