"""Ablation: star vs staggered vs binomial-tree repair."""

from repro.analysis import experiments


def test_ablation_tree_shapes(benchmark, save_report):
    result = benchmark.pedantic(
        experiments.ablation_tree_shapes, rounds=1, iterations=1
    )
    save_report(result)
    by = {row["strategy"]: row for row in result.rows}
    # Staggering removes congestion but serializes: slowest overall (§4.2).
    assert by["staggered"]["duration_s"] > by["star"]["duration_s"]
    # PPR wins on time AND on hotspot size.
    assert by["ppr"]["duration_s"] < by["star"]["duration_s"]
    assert by["ppr"]["max_ingress_chunks"] < by["star"]["max_ingress_chunks"]
