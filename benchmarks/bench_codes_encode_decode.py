"""Throughput of encode / decode / reconstruct for every shipped code."""

import numpy as np
import pytest

from repro.codes import (
    CauchyReedSolomonCode,
    LocalReconstructionCode,
    ReedSolomonCode,
    RotatedReedSolomonCode,
)
from repro.util.units import MIB

CODES = [
    ReedSolomonCode(6, 3),
    ReedSolomonCode(12, 4),
    CauchyReedSolomonCode(6, 3),
    LocalReconstructionCode(12, 2, 2),
    RotatedReedSolomonCode(12, 4, r=4),
]
IDS = [c.name for c in CODES]
CHUNK = MIB


@pytest.fixture(params=CODES, ids=IDS)
def code(request):
    return request.param


@pytest.fixture
def stripe(code):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(code.k, CHUNK), dtype=np.uint8)
    return data, code.encode(data)


def test_encode(benchmark, code, stripe):
    data, _ = stripe
    benchmark(code.encode, data)


def test_decode_from_k(benchmark, code, stripe):
    _, encoded = stripe
    available = {i: encoded[i] for i in range(code.n) if i != 0}
    benchmark(code.decode_data, available)


def test_reconstruct_one(benchmark, code, stripe):
    _, encoded = stripe
    available = {i: encoded[i] for i in range(code.n) if i != 0}
    recipe = code.repair_recipe(0, available.keys())
    benchmark(recipe.execute, available)
