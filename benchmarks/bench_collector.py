"""Collector ingest throughput and node-side shipping overhead.

Two acceptance claims from the observability layer:

1. **Ingest scales.**  The collector folds pushed batches into tiered
   retention fast enough that a 16-node fleet at heartbeat cadence is
   noise — benchmarked here as whole-fleet batch rounds per second.
2. **Shipping is nearly free node-side.**  A node that runs a
   :class:`~repro.obs.collector.TelemetryShipper` pays for one batch cut
   per heartbeat — series delta copies under the store lock — which must
   stay under 5% of the cost of producing the telemetry itself (the
   appends).  The ingest half runs on the *collector*, not the node, so
   it is excluded from the overhead measurement exactly as it is
   excluded from the node's CPU budget in deployment.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.obs.collector import TelemetryCollector, TelemetryShipper
from repro.obs.metrics import Histogram
from repro.obs.timeseries import TimeSeriesStore
from repro.qos.slo import QOS_BUCKETS

BENCH_CONFIG = {
    "nodes": 16,
    "series_per_node": 8,
    "samples_per_series_per_batch": 25,
    "batch_rounds": 40,
    "overhead_appends": 20000,
    "overhead_series": 8,
    "appends_per_heartbeat": 1000,
}

NODES = BENCH_CONFIG["nodes"]
SERIES = BENCH_CONFIG["series_per_node"]
SAMPLES = BENCH_CONFIG["samples_per_series_per_batch"]
ROUNDS = BENCH_CONFIG["batch_rounds"]


def _build_batches():
    """ROUNDS heartbeat rounds of pushed batches for a 16-node fleet."""
    batches = []
    for node_i in range(NODES):
        node = f"S{node_i:03d}"
        hist = Histogram("live.read.latency", {"node": node}, QOS_BUCKETS)
        hist.observe(0.004 * (node_i + 1))
        for seq in range(1, ROUNDS + 1):
            t0 = float(seq * SAMPLES)
            batches.append(
                {
                    "node": node,
                    "boot": f"boot-{node_i}",
                    "seq": seq,
                    "now": t0,
                    "series": [
                        {
                            "name": f"metric.{s}",
                            "labels": {"node": node},
                            "samples": [
                                [t0 + k, float(k)] for k in range(SAMPLES)
                            ],
                            "dropped": 0,
                        }
                        for s in range(SERIES)
                    ],
                    "hists": [hist.snapshot()],
                    "queue_dropped": 0,
                }
            )
    # Interleave nodes the way a real fleet arrives: by round, not node.
    batches.sort(key=lambda b: (b["seq"], b["node"]))
    return batches


@pytest.mark.benchmark(disable_gc=True, min_rounds=10)
def test_ingest_throughput(benchmark):
    """Fold a whole fleet's pushed batches into tiered retention."""
    batches = _build_batches()

    def ingest():
        collector = TelemetryCollector(raw_capacity=512)
        for batch in batches:
            collector.ingest(batch)
        return collector

    collector = benchmark(ingest)
    expected = NODES * ROUNDS * SERIES * SAMPLES
    assert collector.samples_ingested == expected
    assert collector.batches_ingested == NODES * ROUNDS
    assert collector.sample_count() <= collector.max_samples()
    # Every node's histogram landed and merges to one fleet family.
    merged = collector.merged_hists()
    assert len(merged) == 1 and merged[0]["count"] == NODES

    median = benchmark.stats.stats.median
    per_batch_us = median / (NODES * ROUNDS) * 1e6
    print(
        f"\ningest: {NODES * ROUNDS} batches ({expected} samples) in "
        f"{median * 1e3:.1f} ms median -> {per_batch_us:.1f} us/batch"
    )


@pytest.mark.benchmark(disable_gc=True, min_rounds=20)
def test_one_rpc_top_frame(benchmark):
    """The cockpit query over a fully populated 16-node collector."""
    collector = TelemetryCollector(raw_capacity=512)
    for batch in _build_batches():
        collector.ingest(batch)

    frame = benchmark(collector.top, now=float(ROUNDS * SAMPLES + 1))
    assert len(frame["fleet"]) == NODES
    assert frame["series"] and frame["hists"]


def _run_workload() -> "tuple[float, float]":
    """One pass of the node-side telemetry workload, with attribution.

    The workload is BENCH_CONFIG["overhead_appends"] samples spread over
    8 series; a batch is cut (and immediately acknowledged, as the async
    send loop does) every ``appends_per_heartbeat`` appends.  Returns
    ``(append_seconds, ship_seconds)`` — the time spent recording
    telemetry versus the time spent cutting batches for the collector.
    Collection is paused during the timed region so the allocator's
    amortised background work lands on neither side of the ratio.
    """
    n = BENCH_CONFIG["overhead_appends"]
    cadence = BENCH_CONFIG["appends_per_heartbeat"]
    num_series = BENCH_CONFIG["overhead_series"]
    store = TimeSeriesStore(capacity=512)
    series = [
        store.series(f"metric.{s}", node="S001")
        for s in range(num_series)
    ]
    shipper = TelemetryShipper("S001", store, max_queue=8)
    append_s = 0.0
    ship_s = 0.0
    gc.collect()
    gc.disable()
    try:
        for chunk in range(0, n, cadence):
            t0 = time.perf_counter()
            for i in range(chunk, chunk + cadence):
                series[i % num_series].append(float(i), float(i))
            t1 = time.perf_counter()
            shipper.collect(now=float(chunk))
            shipper.mark_sent()
            t2 = time.perf_counter()
            append_s += t1 - t0
            ship_s += t2 - t1
        return append_s, ship_s
    finally:
        gc.enable()


def test_node_side_overhead_under_five_percent():
    """The tentpole overhead budget: batch cutting at heartbeat cadence
    adds < 5% to the cost of recording the telemetry in the first
    place.

    Measured by within-run attribution — the shipping calls are timed
    inside the same pass as the appends they piggyback on — because on
    shared hardware the run-to-run variance of a bare-versus-shipped
    subtraction exceeds the effect being measured.  The median ratio
    over several passes is the estimate; any one pass can be perturbed,
    but numerator and denominator of each ratio share the perturbation.
    """
    _run_workload()  # warm-up, untimed
    ratios = []
    for _ in range(9):
        append_s, ship_s = _run_workload()
        ratios.append(ship_s / append_s)
    ratios.sort()
    overhead = ratios[len(ratios) // 2]
    print(
        f"\nnode-side shipping overhead: median {overhead * 100:+.2f}% "
        f"of telemetry recording cost "
        f"(spread {ratios[0] * 100:+.2f}% .. {ratios[-1] * 100:+.2f}%)"
    )
    assert overhead < 0.05, (
        f"shipping overhead {overhead * 100:.2f}% exceeds the 5% budget"
    )
