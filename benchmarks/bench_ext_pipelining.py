"""Extension: repair pipelining (sliced chain) vs PPR."""

from repro.analysis import extensions


def test_ext_pipelining(benchmark, save_report):
    result = benchmark.pedantic(
        extensions.ext_pipelining, rounds=1, iterations=1
    )
    save_report(result)
    by = {(r["strategy"], r["slices"]): r for r in result.rows}
    # Unsliced chain serializes (k hops).
    assert by[("chain", 1)]["duration_s"] > by[("ppr", 1)]["duration_s"]
    # Slicing makes the chain monotonically faster...
    chain = [r for r in result.rows if r["strategy"] == "chain"]
    times = [r["duration_s"] for r in sorted(chain, key=lambda r: r["slices"])]
    assert times == sorted(times, reverse=True)
    # ...and a well-sliced chain beats the paper's PPR tree (the follow-on
    # result repair pipelining published a year later).
    assert by[("chain", 64)]["duration_s"] < by[("ppr", 1)]["duration_s"]
    # Measured network time tracks the analytic prediction within 25%.
    for row in result.rows:
        assert row["network_s"] >= row["predicted_s"] * 0.75


def test_ext_pipelining_correctness_at_many_slice_counts(benchmark):
    from repro.codes import ReedSolomonCode
    from repro.core.single_repair import run_single_repair
    from repro.fs.cluster import StorageCluster

    def sweep():
        for slices in (2, 3, 5, 7, 13):
            cluster = StorageCluster.smallsite()
            stripe = cluster.write_stripe(ReedSolomonCode(6, 3), "8MiB")
            result = run_single_repair(
                cluster, stripe, 0, strategy="chain", num_slices=slices
            )
            assert result.verified, slices

    benchmark.pedantic(sweep, rounds=1, iterations=1)
