"""Fig 9: PPR overlaid on LRC and Rotated RS."""

from repro.analysis import experiments


def test_fig9_overlay(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: experiments.fig9_overlay(runs=1), rounds=1, iterations=1
    )
    save_report(result)
    durations = {row["variant"]: row["duration_s"] for row in result.rows}
    # Repair-friendly codes beat plain RS.
    assert durations["LRC(12,2,2)"] < durations["RS(12,4)"]
    assert durations["RotRS(12,4)"] < durations["RS(12,4)"]
    # PPR stacks on each of them (the paper's headline for Fig 9).
    assert durations["LRC(12,2,2)+PPR"] < durations["LRC(12,2,2)"]
    assert durations["RotRS(12,4)+PPR"] < durations["RotRS(12,4)"]
    # §7.7: PPR on plain RS(12,4) already beats LRC alone at 64MB chunks
    # (4 chunks max per link vs 6).
    assert durations["RS(12,4)+PPR"] < durations["LRC(12,2,2)"]
    # And beats Rotated RS alone.
    assert durations["RS(12,4)+PPR"] < durations["RotRS(12,4)"]
