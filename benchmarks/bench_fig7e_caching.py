"""Fig 7e: contribution of the in-memory chunk cache."""

from repro.analysis import experiments


def test_fig7e_caching(benchmark, save_report):
    result = benchmark.pedantic(
        experiments.fig7e_caching, rounds=1, iterations=1
    )
    save_report(result)
    for row in result.rows:
        # Warm cache never hurts.
        assert row["warm_reduction"] >= row["cold_reduction"]
        assert row["extra"] >= 0.0
    # Caching matters more at lower k (paper: marginal at k=12/64MB where
    # network dominates disk IO).
    extra_k6 = [r["extra"] for r in result.rows if r["k"] == 6]
    extra_k12 = [r["extra"] for r in result.rows if r["k"] == 12]
    assert min(extra_k6) > max(extra_k12) - 0.01
