"""Durability: MTTDL ratio PPR/traditional per code, and trial throughput.

The acceptance claim of the reliability engine (ISSUE 4 / §1–§2 of the
paper): in a bandwidth-limited regime, PPR's repair-time reduction buys
at least a *proportional* MTTDL improvement — and, because repair speed
enters the Markov MTTDL roughly as ``(mu/lambda)^m``, usually much more.

All simulated metrics are seeded-deterministic, so the emitted
``results/BENCH_reliability.json`` doubles as a perf-gate baseline
(``tools/bench_compare.py`` ±25%).  Unlike the figure benchmarks this
module deliberately skips the pytest-benchmark timing fixture: a
minute-long Monte Carlo sweep's wall clock swings far more than ±25%
across machines, and its gateable ``.median`` would poison the baseline.
Trial throughput is still reported — the ``stripe_years_per_sec.mean``
column per row, which the gate skips like timing stats.
"""

from repro.reliability.report import durability_comparison

#: Workload parameters stamped into every BENCH_reliability.json record.
BENCH_CONFIG = {
    "regime": "accelerated-bandwidth-limited",
    "disk_lifetime": "exp:5d",
    "chunk_size": "256MiB",
    "net_bandwidth": "0.5Gbps",
    "repair_slots": 2,
    "num_stripes": 250,
    "trials": 5,
    "seed": 2016,
}


def test_durability_comparison(save_report):
    result = durability_comparison()
    save_report(result)

    by_key = {(r["code"], r["scheme"]): r for r in result.rows}
    codes = sorted({code for code, _ in by_key})
    for code in codes:
        trad = by_key[(code, "traditional")]
        ppr = by_key[(code, "ppr")]
        mppr = by_key[(code, "mppr")]
        # PPR's repair-time reduction (Theorem 1) ...
        speedup = trad["per_chunk_repair_s"] / ppr["per_chunk_repair_s"]
        assert speedup > 1.5, (code, speedup)
        # ... translates into a >= proportional MTTDL improvement.
        assert ppr["mttdl_vs_traditional_x"] >= speedup, (
            code, ppr["mttdl_vs_traditional_x"], speedup
        )
        # m-PPR shares PPR's critical path; its scheduling must at least
        # beat star repair (its edge over plain PPR is within Monte
        # Carlo noise at this trial count, so no ordering is asserted).
        assert mppr["mttdl_vs_traditional_x"] > 1.0, code
        # Faster repair shrinks the window of vulnerability too.
        assert (
            ppr["exposure_chunk_hours_per_stripe_year"]
            < trad["exposure_chunk_hours_per_stripe_year"]
        ), code
