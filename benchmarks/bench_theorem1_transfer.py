"""Theorem 1: measured network transfer time vs the closed form."""

import pytest

from repro.analysis import experiments


def test_theorem1_network_times(benchmark, save_report):
    result = benchmark.pedantic(
        experiments.theorem1_network_times, rounds=1, iterations=1
    )
    save_report(result)
    for row in result.rows:
        # Simulator within 5% of k*C/B and ceil(log2(k+1))*C/B.
        assert row["meas_star"] == pytest.approx(row["pred_star"], rel=0.05)
        assert row["meas_ppr"] == pytest.approx(row["pred_ppr"], rel=0.05)
