"""Ablation: fat-tree oversubscription (§4.2's network-architecture caveat).

The paper assumes ~full bisection bandwidth.  This ablation measures what
happens when the core is oversubscribed: repairs whose flows cross racks
start contending in the rack uplinks, and PPR's advantage narrows
(its aggregation hops cross the core repeatedly) but persists.
"""

import pytest

from repro.analysis.render import Table
from repro.codes import ReedSolomonCode
from repro.core.single_repair import run_single_repair
from repro.fs.cluster import StorageCluster


def measure(oversubscription, strategy):
    cluster = StorageCluster.smallsite(
        num_servers=16,
        servers_per_rack=4,
        oversubscription=oversubscription,
    )
    stripe = cluster.write_stripe(ReedSolomonCode(6, 3), "64MiB")
    return run_single_repair(cluster, stripe, 0, strategy=strategy)


def test_ablation_oversubscription(benchmark, save_report):
    def run():
        table = Table(
            ["core oversubscription", "traditional", "PPR", "reduction"],
            title="Ablation: fat-tree oversubscription, RS(6,3), 64MiB",
        )
        rows = []
        for factor in (1.0, 2.0, 4.0):
            star = measure(factor, "star")
            ppr = measure(factor, "ppr")
            assert star.verified and ppr.verified
            reduction = 1 - ppr.duration / star.duration
            rows.append(
                {"oversubscription": factor, "star_s": star.duration,
                 "ppr_s": ppr.duration, "reduction": reduction}
            )
            table.add_row(
                f"{factor:.0f}:1", f"{star.duration:.2f}s",
                f"{ppr.duration:.2f}s", f"{reduction:.1%}",
            )

        class Result:
            experiment_id = "ablation_oversubscription"
            report = table.render()

        Result.rows = rows
        return Result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(result)
    for row in result.rows:
        # PPR keeps winning even on an oversubscribed core.
        assert row["ppr_s"] < row["star_s"]
    # Full bisection behaves like the single switch (Theorem 1 regime).
    assert result.rows[0]["reduction"] == pytest.approx(0.40, abs=0.08)
