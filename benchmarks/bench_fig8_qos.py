"""QoS contention: m-PPR weighting vs load-blind under a repair storm.

The acceptance claim of the QoS subsystem (ISSUE 6, extending Fig 8/9's
"impact on user reads"): with an open-loop Zipf client population
hammering the cluster while a multi-failure repair storm runs, m-PPR's
load-aware source/destination weighting (Eqs. 2-3, fed by live per-server
``user_load_bytes``) must strictly improve the p99 degraded-read latency
over the weight-free baseline — the user-facing tail, not just the mean.

The whole scenario runs inside the deterministic discrete-event
simulator, so every emitted metric is bit-identical across runs and the
``results/BENCH_fig8_qos.json`` baseline doubles as a 0%-drift perf-gate
record.  Like ``bench_reliability.py``, this module deliberately skips
the pytest-benchmark timing fixture: the gateable payload is the latency
distribution the simulation *computes*, not the wall clock it takes.
"""

from repro.qos import qos_contention_experiment

#: Workload parameters stamped into every BENCH_fig8_qos.json record
#: (mirrors ScenarioConfig defaults; see repro.qos.scenario).
BENCH_CONFIG = {
    "servers": 12,
    "code": "rs(4,2)",
    "chunk_size": "16MiB",
    "num_stripes": 12,
    "requests_per_second": 60.0,
    "num_users": 100_000,
    "zipf_exponent": 1.1,
    "read_size": "1MiB",
    "duration": 120.0,
    "kill_count": 2,
    "repair_rate": "250Mbps",
    "repair_floor": "10Mbps",
    "seed": 2016,
}


def test_qos_contention(save_report):
    result = qos_contention_experiment()
    save_report(result)

    by_weighting = {row["weighting"]: row for row in result.rows}
    mppr = by_weighting["mppr"]
    uniform = by_weighting["uniform"]

    # The headline: load-aware scheduling strictly shrinks the
    # degraded-read tail vs weight-free helper selection.
    assert mppr["deg_p99_s"] < uniform["deg_p99_s"], (
        mppr["deg_p99_s"], uniform["deg_p99_s"]
    )
    # ... without trading away the foreground tail.
    assert mppr["fg_p99_s"] <= uniform["fg_p99_s"], (
        mppr["fg_p99_s"], uniform["fg_p99_s"]
    )
    # Both variants must actually finish the storm's repairs — a tail
    # "win" that starves repair would be a false economy.
    assert mppr["repairs_completed"] == uniform["repairs_completed"]
    assert mppr["repairs_completed"] > 0
    # Degraded reads were genuinely exercised, and the paced run still
    # meets its SLOs end to end.
    assert mppr["degraded_issued"] > 0
    assert mppr["slo_pass"], "m-PPR run must meet its SLO targets"
